// Fault-injection failpoints.
//
// A failpoint is a named site in library code where a test (or an operator,
// via the TEMCO_FAILPOINTS environment variable) can inject a fault:
// simulated allocator OOM, arena packing overflow, kernel NaN poisoning, a
// scheduler dropping a node.  Sites are disarmed no-ops by default — one
// relaxed atomic load — so they can live on production paths.  The registry
// lets tests enumerate every site that exists and prove each one surfaces as
// a structured temco::Error subtype (support/error.hpp) instead of UB.
//
// Defining a site (at namespace scope, so it registers before main):
//   namespace { temco::failpoints::Site fp_oom{"allocator.oom"}; }
//   ...
//   if (fp_oom.fire()) throw ResourceExhaustedError("simulated OOM");
//
// Arming:
//   temco::failpoints::arm("allocator.oom");        // every hit fires
//   temco::failpoints::arm("allocator.oom", 2);     // next two hits fire
//   TEMCO_FAILPOINTS="allocator.oom,kernels.poison_nan=1" ./app
//   { temco::failpoints::ScopedArm g("allocator.oom"); ... }  // RAII
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace temco::failpoints {

namespace detail {

/// remaining == 0: disarmed; < 0: fires on every hit; > 0: fires that many
/// more hits, then disarms itself.
struct State {
  std::atomic<std::int64_t> remaining{0};
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  /// Returns the state for `name`, creating it on first reference (this is
  /// how both Site construction and arm() register names).  States are never
  /// destroyed, so the returned reference stays valid for the process.
  State& state(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = states_[name];
    if (slot == nullptr) slot = std::make_unique<State>();
    return *slot;
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> result;
    result.reserve(states_.size());
    for (const auto& [name, state] : states_) result.push_back(name);
    return result;
  }

  void disarm_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, state] : states_) state->remaining.store(0, std::memory_order_relaxed);
  }

 private:
  Registry() { parse_env(); }

  /// TEMCO_FAILPOINTS="name[,name=count]...": arms each listed failpoint;
  /// a missing or unparsable count means "always".
  void parse_env() {
    const char* env = std::getenv("TEMCO_FAILPOINTS");
    if (env == nullptr) return;
    std::string spec(env);
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      std::size_t end = spec.find(',', begin);
      if (end == std::string::npos) end = spec.size();
      std::string entry = spec.substr(begin, end - begin);
      begin = end + 1;
      if (entry.empty()) continue;
      std::int64_t count = -1;
      const std::size_t eq = entry.find('=');
      if (eq != std::string::npos) {
        const std::string value = entry.substr(eq + 1);
        entry.resize(eq);
        count = std::strtoll(value.c_str(), nullptr, 10);
        if (count <= 0) count = -1;
      }
      // Cannot call state() here: the registry mutex is not yet needed (we
      // are inside the constructor, single-threaded), but states_ access is
      // uniform either way.
      auto& slot = states_[entry];
      if (slot == nullptr) slot = std::make_unique<State>();
      slot->remaining.store(count, std::memory_order_relaxed);
    }
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<State>> states_;
};

}  // namespace detail

/// One injection site.  Construct at namespace scope in the .cpp that hosts
/// the site so the name is registered during static initialization and tests
/// can enumerate it without having executed the site first.
class Site {
 public:
  explicit Site(std::string name)
      : name_(std::move(name)), state_(detail::Registry::instance().state(name_)) {}

  /// True when the site is armed (and consumes one count if counted).
  /// Disarmed cost: one relaxed load.
  bool fire() {
    if (state_.remaining.load(std::memory_order_relaxed) == 0) return false;
    for (;;) {
      std::int64_t current = state_.remaining.load(std::memory_order_relaxed);
      if (current == 0) return false;
      if (current < 0) return true;
      if (state_.remaining.compare_exchange_weak(current, current - 1,
                                                 std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  detail::State& state_;
};

/// Arms `name`: count < 0 fires on every hit, count > 0 fires on the next
/// `count` hits.  Creates (registers) the name if no site declared it yet.
inline void arm(const std::string& name, std::int64_t count = -1) {
  TEMCO_CHECK(count != 0) << "arm with count 0 is a no-op; use disarm";
  detail::Registry::instance().state(name).remaining.store(count, std::memory_order_relaxed);
}

inline void disarm(const std::string& name) {
  detail::Registry::instance().state(name).remaining.store(0, std::memory_order_relaxed);
}

inline void disarm_all() { detail::Registry::instance().disarm_all(); }

/// Every failpoint name known to the process: all Sites whose translation
/// units are linked in, plus anything armed by env/API.
inline std::vector<std::string> registered() { return detail::Registry::instance().names(); }

/// RAII arm/disarm for tests.
class ScopedArm {
 public:
  explicit ScopedArm(std::string name, std::int64_t count = -1) : name_(std::move(name)) {
    arm(name_, count);
  }
  ~ScopedArm() { disarm(name_); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  std::string name_;
};

}  // namespace temco::failpoints
