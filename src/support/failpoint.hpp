// Fault-injection failpoints.
//
// A failpoint is a named site in library code where a test (or an operator,
// via the TEMCO_FAILPOINTS environment variable) can inject a fault:
// simulated allocator OOM, arena packing overflow, kernel NaN poisoning, a
// scheduler dropping a node.  Sites are disarmed no-ops by default — one
// relaxed atomic load — so they can live on production paths.  The registry
// lets tests enumerate every site that exists and prove each one surfaces as
// a structured temco::Error subtype (support/error.hpp) instead of UB.
//
// Defining a site (at namespace scope, so it registers before main):
//   namespace { temco::failpoints::Site fp_oom{"allocator.oom"}; }
//   ...
//   if (fp_oom.fire()) throw ResourceExhaustedError("simulated OOM");
//
// Arming:
//   temco::failpoints::arm("allocator.oom");          // every hit fires
//   temco::failpoints::arm("allocator.oom", 2);       // next two hits fire
//   temco::failpoints::arm_after("allocator.oom", 5); // skip 5 hits, fire 1
//   TEMCO_FAILPOINTS="allocator.oom,kernels.poison_nan=1" ./app
//   { temco::failpoints::ScopedArm g("allocator.oom"); ... }  // RAII
//
// The environment spec is parsed lazily on the first arm/disarm/fire/list —
// never during static initialization, so a malformed spec surfaces as a
// typed temco::Error from the first failpoint interaction (catchable,
// testable) instead of std::terminate before main.  apply_spec() exposes the
// same parser directly.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/error.hpp"

namespace temco::failpoints {

/// Arming snapshot of one site, as returned by list().
struct SiteStatus {
  std::string name;
  /// 0: disarmed; < 0: fires on every hit; > 0: fires that many more hits.
  std::int64_t remaining = 0;
  /// Hits still to be skipped before `remaining` starts being consumed.
  std::int64_t skips = 0;

  bool armed() const { return remaining != 0; }
};

namespace detail {

/// remaining == 0: disarmed; < 0: fires on every hit; > 0: fires that many
/// more hits, then disarms itself.  While skip > 0, hits decrement skip and
/// do not fire (arm_after's delayed one-shot mode).
struct State {
  std::atomic<std::int64_t> remaining{0};
  std::atomic<std::int64_t> skip{0};
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  /// Returns the state for `name`, creating it on first reference (this is
  /// how both Site construction and arm() register names).  States are never
  /// destroyed, so the returned reference stays valid for the process.
  /// Deliberately does NOT parse the environment: it runs during static
  /// initialization of every Site, where a throw would be fatal.
  State& state(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = states_[name];
    if (slot == nullptr) slot = std::make_unique<State>();
    return *slot;
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> result;
    result.reserve(states_.size());
    for (const auto& [name, state] : states_) result.push_back(name);
    return result;
  }

  std::vector<SiteStatus> statuses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SiteStatus> result;
    result.reserve(states_.size());
    for (const auto& [name, state] : states_) {
      SiteStatus status;
      status.name = name;
      status.remaining = state->remaining.load(std::memory_order_relaxed);
      status.skips = state->skip.load(std::memory_order_relaxed);
      result.push_back(std::move(status));
    }
    return result;
  }

  void disarm_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, state] : states_) {
      state->remaining.store(0, std::memory_order_relaxed);
      state->skip.store(0, std::memory_order_relaxed);
    }
  }

  /// Parses a TEMCO_FAILPOINTS-style spec ("name[,name=count]...") and arms
  /// each entry.  Strict: an empty name, a non-numeric count, trailing
  /// garbage after the digits, or a count of 0 raises temco::Error naming
  /// the offending entry — nothing is armed on failure.
  void apply_spec(const std::string& spec) {
    struct Parsed {
      std::string name;
      std::int64_t count;
    };
    std::vector<Parsed> entries;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      std::size_t end = spec.find(',', begin);
      if (end == std::string::npos) end = spec.size();
      std::string entry = spec.substr(begin, end - begin);
      const bool last = end == spec.size();
      begin = end + 1;
      if (entry.empty()) {
        // A wholly empty spec is fine; an empty entry between commas is a
        // typo worth rejecting ("a,,b" silently dropping a site is how an
        // operator loses an injection they believed was live).
        if (spec.empty() && last) break;
        throw Error("malformed TEMCO_FAILPOINTS entry: empty name in \"" + spec + "\"");
      }
      std::int64_t count = -1;
      const std::size_t eq = entry.find('=');
      if (eq != std::string::npos) {
        const std::string value = entry.substr(eq + 1);
        entry.resize(eq);
        if (entry.empty()) {
          throw Error("malformed TEMCO_FAILPOINTS entry: empty name in \"=" + value + "\"");
        }
        char* parse_end = nullptr;
        errno = 0;
        count = std::strtoll(value.c_str(), &parse_end, 10);
        if (value.empty() || parse_end != value.c_str() + value.size() || errno == ERANGE) {
          throw Error("malformed TEMCO_FAILPOINTS count \"" + value + "\" for failpoint \"" +
                      entry + "\": expected a nonzero integer");
        }
        if (count == 0) {
          throw Error("TEMCO_FAILPOINTS count 0 for failpoint \"" + entry +
                      "\" would be a silent no-op; omit the entry or use a nonzero count");
        }
      }
      entries.push_back({std::move(entry), count});
      if (last) break;
    }
    for (auto& parsed : entries) {
      State& slot = state(parsed.name);
      slot.remaining.store(parsed.count, std::memory_order_relaxed);
      slot.skip.store(0, std::memory_order_relaxed);
    }
  }

  /// Applies TEMCO_FAILPOINTS exactly once per process, on the first call.
  /// A malformed spec throws on every call until the process fixes it —
  /// loud, typed, and impossible to mistake for a working injection.
  void ensure_env_applied() {
    std::call_once(env_once_, [this] {
      const char* env = std::getenv("TEMCO_FAILPOINTS");
      if (env != nullptr) apply_spec(env);
    });
  }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<State>> states_;
  std::once_flag env_once_;
};

}  // namespace detail

/// One injection site.  Construct at namespace scope in the .cpp that hosts
/// the site so the name is registered during static initialization and tests
/// can enumerate it without having executed the site first.
class Site {
 public:
  explicit Site(std::string name)
      : name_(std::move(name)), state_(detail::Registry::instance().state(name_)) {}

  /// True when the site is armed (and consumes one count if counted).
  /// Disarmed cost: one relaxed load.
  bool fire() {
    // Env arming is what flips `remaining` nonzero, so the spec must apply
    // before the disarmed fast path can be trusted.  After the first call
    // this is a single satisfied-once check.
    detail::Registry::instance().ensure_env_applied();
    if (state_.remaining.load(std::memory_order_relaxed) == 0) return false;
    // arm_after: consume a skip instead of firing while any remain.
    for (;;) {
      std::int64_t skips = state_.skip.load(std::memory_order_relaxed);
      if (skips <= 0) break;
      if (state_.skip.compare_exchange_weak(skips, skips - 1, std::memory_order_relaxed)) {
        return false;
      }
    }
    for (;;) {
      std::int64_t current = state_.remaining.load(std::memory_order_relaxed);
      if (current == 0) return false;
      if (current < 0) return true;
      if (state_.remaining.compare_exchange_weak(current, current - 1,
                                                 std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  detail::State& state_;
};

/// Arms `name`: count < 0 fires on every hit, count > 0 fires on the next
/// `count` hits.  Creates (registers) the name if no site declared it yet.
/// Clears any pending arm_after skips.
inline void arm(const std::string& name, std::int64_t count = -1) {
  TEMCO_CHECK(count != 0) << "arm with count 0 is a no-op; use disarm";
  detail::Registry::instance().ensure_env_applied();
  detail::State& state = detail::Registry::instance().state(name);
  state.skip.store(0, std::memory_order_relaxed);
  state.remaining.store(count, std::memory_order_relaxed);
}

/// Delayed arming: the next `n_skips` hits pass through unharmed, then the
/// following `count` hits fire (default: a one-shot).  This is what lets a
/// chaos run land a fault mid-stream — after the warm-up requests, inside
/// the Nth batch — instead of always on first touch.
inline void arm_after(const std::string& name, std::int64_t n_skips, std::int64_t count = 1) {
  TEMCO_CHECK(n_skips >= 0) << "arm_after needs a non-negative skip count";
  TEMCO_CHECK(count != 0) << "arm_after with count 0 is a no-op; use disarm";
  detail::Registry::instance().ensure_env_applied();
  detail::State& state = detail::Registry::instance().state(name);
  // Order matters for a concurrently firing site: publish the skip budget
  // before remaining flips nonzero, so no hit can fire before the skips.
  state.skip.store(n_skips, std::memory_order_relaxed);
  state.remaining.store(count, std::memory_order_release);
}

inline void disarm(const std::string& name) {
  detail::State& state = detail::Registry::instance().state(name);
  state.remaining.store(0, std::memory_order_relaxed);
  state.skip.store(0, std::memory_order_relaxed);
}

inline void disarm_all() { detail::Registry::instance().disarm_all(); }

/// Every failpoint name known to the process: all Sites whose translation
/// units are linked in, plus anything armed by env/API.
inline std::vector<std::string> registered() { return detail::Registry::instance().names(); }

/// Arming snapshot of every registered site — the registry iterator the
/// chaos harness sweeps.  Ordered by name (map order) for determinism.
inline std::vector<SiteStatus> list() {
  detail::Registry::instance().ensure_env_applied();
  return detail::Registry::instance().statuses();
}

/// Parses and applies one TEMCO_FAILPOINTS-style spec programmatically.
/// Throws temco::Error (naming the offending entry) on malformed input;
/// on failure nothing is armed.
inline void apply_spec(const std::string& spec) {
  detail::Registry::instance().apply_spec(spec);
}

/// RAII arm/disarm for tests.
class ScopedArm {
 public:
  explicit ScopedArm(std::string name, std::int64_t count = -1) : name_(std::move(name)) {
    arm(name_, count);
  }
  ~ScopedArm() { disarm(name_); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  std::string name_;
};

}  // namespace temco::failpoints
