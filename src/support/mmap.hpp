// Read-only file mapping for artifact loading.
//
// MappedFile maps a whole file read-only and page-aligned, which is what lets
// the artifact loader (serve/artifact.hpp) hand out zero-copy views into the
// packed-weight section: N server processes mapping the same artifact share
// one physical copy of the weights, and "loading" them costs page faults, not
// a read + memcpy.  On platforms without mmap (or when the map fails) the
// file is read into one page-aligned heap buffer instead — same interface,
// same alignment guarantees, one copy.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TEMCO_HAVE_MMAP 1
#else
#define TEMCO_HAVE_MMAP 0
#endif

#include "support/error.hpp"

namespace temco::support {

/// Alignment every MappedFile buffer start is guaranteed to have, whichever
/// backend produced it.  4096 is the smallest page size on every supported
/// platform, and comfortably covers the 64-byte alignment the packed-weight
/// blobs need for aligned vector loads.
inline constexpr std::size_t kMappedFileAlignment = 4096;

class MappedFile {
 public:
  /// Maps (or reads) `path` whole.  Throws ResourceExhaustedError when the
  /// file cannot be opened or mapped; never returns a partial view.
  static std::shared_ptr<const MappedFile> open(const std::string& path) {
    auto file = std::shared_ptr<MappedFile>(new MappedFile());
    file->path_ = path;
#if TEMCO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
        file->size_ = static_cast<std::size_t>(st.st_size);
        if (file->size_ == 0) {
          ::close(fd);
          file->data_ = nullptr;  // empty file: a valid, empty view
          return file;
        }
        void* mapped = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (mapped != MAP_FAILED) {
          file->data_ = static_cast<const unsigned char*>(mapped);
          file->mmapped_ = true;
          return file;
        }
      } else {
        ::close(fd);
      }
    }
#endif
    return read_fallback(std::move(file));
  }

  ~MappedFile() {
#if TEMCO_HAVE_MMAP
    if (mmapped_ && data_ != nullptr) {
      ::munmap(const_cast<unsigned char*>(data_), size_);
      return;
    }
#endif
    std::free(const_cast<unsigned char*>(data_));
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  bool memory_mapped() const { return mmapped_; }

 private:
  MappedFile() = default;

  static std::shared_ptr<const MappedFile> read_fallback(std::shared_ptr<MappedFile> file) {
    std::FILE* f = std::fopen(file->path_.c_str(), "rb");
    if (f == nullptr) {
      throw ResourceExhaustedError("cannot open " + file->path_);
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      throw ResourceExhaustedError("cannot stat " + file->path_);
    }
    file->size_ = static_cast<std::size_t>(size);
    if (file->size_ == 0) {
      std::fclose(f);
      return file;
    }
    // aligned_alloc needs a size that is a multiple of the alignment.
    const std::size_t padded =
        (file->size_ + kMappedFileAlignment - 1) / kMappedFileAlignment * kMappedFileAlignment;
    unsigned char* buffer = static_cast<unsigned char*>(
        std::aligned_alloc(kMappedFileAlignment, padded));
    if (buffer == nullptr) {
      std::fclose(f);
      throw ResourceExhaustedError("cannot allocate " + std::to_string(padded) +
                                   " bytes reading " + file->path_);
    }
    const std::size_t got = std::fread(buffer, 1, file->size_, f);
    std::fclose(f);
    if (got != file->size_) {
      std::free(buffer);
      throw ResourceExhaustedError("short read of " + file->path_);
    }
    file->data_ = buffer;
    return file;
  }

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;
};

}  // namespace temco::support
