// Structured error taxonomy.
//
// Every failure the library can surface — malformed graphs, shape mismatches,
// exhausted memory, numeric corruption — is a subtype of temco::Error, so
// callers can catch precisely what they can handle and tests can prove that
// injected faults (support/failpoint.hpp) never escape as undefined behavior,
// aborts, or foreign exception types.  The subtype is the contract; the
// message carries the offending node/pass/value name.
#pragma once

#include <stdexcept>
#include <string>

namespace temco {

/// Base of all library errors (thrown by TEMCO_CHECK and friends).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// The graph violates a structural invariant: dangling or forward edges,
/// out-of-order ids, duplicate or missing outputs, lost nodes.
class InvalidGraphError : public Error {
 public:
  using Error::Error;
};

/// Shapes are inconsistent: operands disagree, attributes are degenerate
/// (stride 0, negative padding), or a node's recorded shape is stale.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// An allocation (heap tensor, arena slab) or packing could not be satisfied.
class ResourceExhaustedError : public Error {
 public:
  using Error::Error;
};

/// A kernel produced NaN/Inf, or a differential oracle found the outputs of a
/// rewritten graph diverging from its input graph.
class NumericError : public Error {
 public:
  using Error::Error;
};

/// Arena canary bytes were overwritten: some kernel wrote outside its
/// assigned slot.  Distinct from NumericError because the *storage* is
/// corrupt, not the arithmetic.
class MemoryCorruptionError : public Error {
 public:
  using Error::Error;
};

/// Work was abandoned before it ran: a serving request still sitting in the
/// queue when its server shut down.  Distinct from ResourceExhaustedError
/// (the request *was* accepted; capacity was never the problem) so clients
/// can tell "retry elsewhere" from "back off".
class CancelledError : public Error {
 public:
  using Error::Error;
};

/// A request's deadline passed — at admission, at batch formation, between
/// executor waves, or because its batch exceeded the watchdog's hang budget.
/// Not a CancelledError subtype: "the server gave up on you" and "you ran
/// out of time" demand different client reactions (resubmit elsewhere vs
/// relax the SLO), so they must be catchable separately.
class DeadlineExceededError : public Error {
 public:
  using Error::Error;
};

/// Admission control's verdict that a request is already doomed: the
/// predicted queue wait alone blows the request's deadline or the model's
/// latency SLO, so accepting it would only burn queue capacity and a session
/// on an answer nobody can use.  Distinct from ResourceExhaustedError (the
/// queue may have plenty of room — time is what ran out) and from
/// DeadlineExceededError (the deadline has NOT passed yet; it provably will):
/// the client's correct reaction is to shed load or relax the SLO, not to
/// back off and retry the same request.
class SloUnmeetableError : public Error {
 public:
  using Error::Error;
};

/// A spurious, non-corrupting fault that is safe to retry on the same
/// session: the failed attempt never published partial results and left no
/// lasting damage (the arena is rewritten from scratch every run).  The
/// serving retry loop treats this class — plus ResourceExhaustedError — as
/// transient; everything else is terminal for the attempt.
class TransientFaultError : public Error {
 public:
  using Error::Error;
};

}  // namespace temco
