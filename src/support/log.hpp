// Minimal leveled logger.
//
// The compiler passes use this to narrate rewrite decisions (what got fused,
// which skip connections were rejected by the overhead model, ...).  Output
// goes to stderr; the level is a process-wide atomic so tests can silence it.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace temco {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace detail {

inline std::atomic<int>& log_level_storage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

inline std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

inline std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level) {
    std::string_view path(file);
    const auto slash = path.find_last_of('/');
    if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
    stream_ << "[" << level_name(level) << " " << path << ":" << line << "] ";
  }

  ~LogLine() {
    std::lock_guard<std::mutex> lock(log_mutex());
    std::cerr << stream_.str() << "\n";
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

/// Sets the global log threshold; messages below it are discarded.
inline void set_log_level(LogLevel level) {
  detail::log_level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

inline LogLevel log_level() {
  return static_cast<LogLevel>(detail::log_level_storage().load(std::memory_order_relaxed));
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace temco

#define TEMCO_LOG(level)                          \
  if (!::temco::log_enabled(::temco::LogLevel::level)) { \
  } else                                          \
    ::temco::detail::LogLine(::temco::LogLevel::level, __FILE__, __LINE__)

#define TEMCO_DEBUG() TEMCO_LOG(kDebug)
#define TEMCO_INFO() TEMCO_LOG(kInfo)
#define TEMCO_WARN() TEMCO_LOG(kWarn)
#define TEMCO_ERROR() TEMCO_LOG(kError)
