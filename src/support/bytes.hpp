// Human-readable byte formatting for reports and benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace temco {

/// Formats a byte count as e.g. "1.50 MiB"; exact for small values.
inline std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = kKiB * 1024;
  constexpr std::uint64_t kGiB = kMiB * 1024;
  char buffer[64];
  if (bytes >= kGiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

}  // namespace temco
