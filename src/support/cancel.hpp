// Cooperative cancellation and deadlines.
//
// A CancelToken is a tiny shared flag that long-running work polls between
// natural preemption points — the Executor checks it between nodes (serial
// regimes) and between waves (wavefront regime); the serving layer checks it
// at admission and batch formation.  Cancellation is one-way and sticky until
// reset(): the owner of the computation (a serving Session) resets the token
// between checkouts, workers only ever observe or raise it.
//
// Two independent stop sources share the token so poll sites stay single:
//   - cancel(): an external actor (the watchdog, shutdown) abandons the work;
//     surfaces as CancelledError.
//   - set_deadline(t): the work outlives its SLO; surfaces as
//     DeadlineExceededError once steady_clock passes t.
// stop_requested() folds both; raise_if_stopped() converts the state into the
// matching typed error so every poll site classifies identically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "support/error.hpp"

namespace temco::support {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation.  Sticky until reset(); safe from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Sets (or replaces) the absolute deadline.  Clock::time_point::max()
  /// means "none" and is what reset() restores.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(to_ns(deadline), std::memory_order_release);
  }

  /// Clears both stop sources.  Only the owner between units of work — never
  /// concurrently with a poller that might still raise.
  void reset() {
    cancelled_.store(false, std::memory_order_release);
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// True once the deadline (if any) has passed.  Disarmed cost: one load.
  bool expired() const {
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    return deadline != kNoDeadline && to_ns(Clock::now()) >= deadline;
  }

  bool stop_requested() const { return cancelled() || expired(); }

  /// Throws the typed error matching the stop source, if any.  Cancellation
  /// wins over expiry when both are set: an explicit cancel carries intent
  /// (the watchdog already resolved the futures), expiry is circumstance.
  void raise_if_stopped() const {
    if (cancelled()) throw CancelledError("execution cancelled by token");
    if (expired()) throw DeadlineExceededError("execution deadline exceeded");
  }

 private:
  static constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

  static std::int64_t to_ns(Clock::time_point t) {
    if (t == Clock::time_point::max()) return kNoDeadline;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace temco::support
