// CPU instruction-set probe for runtime kernel dispatch.
//
// The GEMM engine ships several micro-kernel tiers — scalar (the always-on
// differential oracle), AVX2/FMA, AVX-512, and a NEON placeholder — compiled
// into every binary behind per-file ISA flags.  Which tier actually runs is a
// *runtime* decision made here, so one build runs correctly on any machine:
// the probe asks the CPU what it supports and dispatch never selects a tier
// the silicon (or the build) cannot execute.
//
// Tiers are ordered: on x86 every AVX-512F machine also runs the AVX2 and
// scalar kernels, so "run tier T" is meaningful for any T at or below the
// detected level — that is what lets TEMCO_KERNEL_ISA force lower tiers for
// differential testing on higher machines (kernels/gemm.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace temco::support {

/// Micro-kernel instruction-set tiers, ascending on x86 (kNeon is its own
/// architecture and never coexists with the AVX tiers).
enum class Isa : std::uint8_t {
  kScalar = 0,  ///< portable register-tiled C++ — the differential oracle
  kAvx2 = 1,    ///< 8-wide FMA (requires AVX2 + FMA)
  kAvx512 = 2,  ///< 16-wide FMA with native masking (requires AVX-512F)
  kNeon = 3,    ///< aarch64 placeholder tier (dispatch stub, scalar kernels)
};

constexpr const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

/// Best tier the *hardware* supports, independent of what this build compiled
/// in (kernels/gemm.cpp intersects the two).  Cached after the first call.
inline Isa detected_isa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const Isa detected = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return Isa::kAvx2;
    return Isa::kScalar;
  }();
  return detected;
#elif defined(__aarch64__)
  return Isa::kNeon;  // NEON is architecturally guaranteed on aarch64
#else
  return Isa::kScalar;
#endif
}

/// True when the hardware can execute `isa`-tier kernels: the scalar tier
/// always, an x86 tier when the detected level is at or above it, NEON only
/// on aarch64.
inline bool isa_runnable(Isa isa) {
  if (isa == Isa::kScalar) return true;
  const Isa detected = detected_isa();
  if (isa == Isa::kNeon || detected == Isa::kNeon) return isa == detected;
  return static_cast<std::uint8_t>(isa) <= static_cast<std::uint8_t>(detected);
}

/// Parses a TEMCO_KERNEL_ISA value ("scalar", "avx2", "avx512", "neon",
/// "native" = detected best).  nullopt for anything else.
inline std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  if (name == "neon") return Isa::kNeon;
  if (name == "native") return detected_isa();
  return std::nullopt;
}

}  // namespace temco::support
