// Chaos-sweep utilities over the failpoint registry.
//
// The chaos harness (tests/test_chaos.cpp) iterates failpoints::list(),
// arms each site at randomized skip/hit counts under concurrent serving
// load, and asserts the fault-tolerance invariants: every future resolves
// with a value or a typed temco::Error, non-faulted requests stay bitwise
// identical to fault-free runs, and the pool returns to steady state.  This
// header holds the serve-independent pieces — deterministic plan
// generation, typed outcome classification, and the per-site JSON summary
// CI uploads as an artifact — so a future harness over a different surface
// (e.g. direct Executor chaos) reuses them unchanged.
#pragma once

#include <cstdint>
#include <cstdio>
#include <exception>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace temco::chaos {

/// One arming decision for one site: let `skips` hits pass, then fire
/// `count` times (failpoints::arm_after semantics).
struct SitePlan {
  std::string site;
  std::int64_t skips = 0;
  std::int64_t count = 1;
};

/// Deterministic randomized plans, one per registered failpoint, ordered by
/// site name.  Seeded so a failing sweep reproduces exactly; randomized so
/// faults land mid-stream — after warm-up, inside the Nth batch — instead of
/// always on first touch.
inline std::vector<SitePlan> plan_sweep(std::uint64_t seed, std::int64_t max_skips,
                                        std::int64_t max_count) {
  std::mt19937_64 rng(seed);
  std::vector<SitePlan> plans;
  for (const failpoints::SiteStatus& status : failpoints::list()) {
    SitePlan plan;
    plan.site = status.name;
    plan.skips = static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(max_skips + 1));
    plan.count = 1 + static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(max_count));
    plans.push_back(std::move(plan));
  }
  return plans;
}

/// Typed classification of how one request resolved.  kForeign — an
/// exception outside the temco::Error taxonomy — is the one class the chaos
/// invariants forbid outright.
enum class Outcome {
  kSuccess,
  kDeadline,
  kCancelled,
  kTransient,
  kResource,
  kNumeric,
  kCorruption,
  kShape,
  kInvalidGraph,
  kOtherTemco,
  kForeign,
};

inline const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSuccess: return "success";
    case Outcome::kDeadline: return "deadline_exceeded";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kTransient: return "transient_fault";
    case Outcome::kResource: return "resource_exhausted";
    case Outcome::kNumeric: return "numeric_error";
    case Outcome::kCorruption: return "memory_corruption";
    case Outcome::kShape: return "shape_error";
    case Outcome::kInvalidGraph: return "invalid_graph";
    case Outcome::kOtherTemco: return "other_temco_error";
    case Outcome::kForeign: return "FOREIGN_EXCEPTION";
  }
  return "unknown";
}

/// Classifies an exception_ptr (nullptr → kSuccess).  The catch order puts
/// subtypes before the temco::Error catch-all.
inline Outcome classify(const std::exception_ptr& error) {
  if (error == nullptr) return Outcome::kSuccess;
  try {
    std::rethrow_exception(error);
  } catch (const DeadlineExceededError&) {
    return Outcome::kDeadline;
  } catch (const CancelledError&) {
    return Outcome::kCancelled;
  } catch (const TransientFaultError&) {
    return Outcome::kTransient;
  } catch (const ResourceExhaustedError&) {
    return Outcome::kResource;
  } catch (const MemoryCorruptionError&) {
    return Outcome::kCorruption;
  } catch (const NumericError&) {
    return Outcome::kNumeric;
  } catch (const ShapeError&) {
    return Outcome::kShape;
  } catch (const InvalidGraphError&) {
    return Outcome::kInvalidGraph;
  } catch (const Error&) {
    return Outcome::kOtherTemco;
  } catch (...) {
    return Outcome::kForeign;
  }
}

/// Per-site tally the sweep accumulates and the JSON artifact reports.
struct SiteReport {
  std::string site;
  std::int64_t skips = 0;             ///< the plan that was armed
  std::int64_t count = 0;
  std::int64_t requests = 0;          ///< requests issued while this site was armed
  std::int64_t bitwise_checked = 0;   ///< successes verified bitwise vs fault-free
  bool steady_state = false;          ///< pool full + clean probe after disarm
  std::map<std::string, std::int64_t> outcomes;  ///< tally keyed by outcome_name

  void record(Outcome outcome) {
    ++requests;
    ++outcomes[outcome_name(outcome)];
  }

  std::int64_t foreign() const {
    auto it = outcomes.find(outcome_name(Outcome::kForeign));
    return it == outcomes.end() ? 0 : it->second;
  }
};

/// Writes the per-failpoint outcome summary CI uploads as an artifact.
/// Returns false (without throwing) if the file cannot be written — the
/// sweep's assertions matter more than its paperwork.
inline bool write_summary_json(const std::string& path, const std::vector<SiteReport>& reports) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file, "{\n  \"sites\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SiteReport& report = reports[i];
    std::fprintf(file,
                 "    {\"site\": \"%s\", \"skips\": %lld, \"count\": %lld, "
                 "\"requests\": %lld, \"bitwise_checked\": %lld, \"steady_state\": %s, "
                 "\"outcomes\": {",
                 report.site.c_str(), static_cast<long long>(report.skips),
                 static_cast<long long>(report.count), static_cast<long long>(report.requests),
                 static_cast<long long>(report.bitwise_checked),
                 report.steady_state ? "true" : "false");
    bool first = true;
    for (const auto& [name, tally] : report.outcomes) {
      std::fprintf(file, "%s\"%s\": %lld", first ? "" : ", ", name.c_str(),
                   static_cast<long long>(tally));
      first = false;
    }
    std::fprintf(file, "}}%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  return true;
}

}  // namespace temco::chaos
