// Arena serving sessions and the session pool.
//
// A Session is the mutable half of the serving runtime: one preallocated
// arena slab plus one bound arena executor per batch variant of a shared
// CompiledModel.  Everything a run needs — the slab, the staging tensors
// batched requests are gathered into, the executors' bound views — is
// allocated at construction, so the steady-state path performs zero heap
// allocations and zero re-planning: check out a session, gather, run, split.
//
// Sessions are NOT thread-safe (the batch variants deliberately share one
// slab); the SessionPool provides the checkout protocol that keeps each
// session owned by at most one thread at a time.  Checkout is a Lease — an
// RAII handle that returns the session on destruction — so a session can
// never leak out of the pool on an exception path.
//
// Fault tolerance: every session carries a CancelToken wired into all of its
// executors, so the serving layer can deadline or abandon an in-flight run
// at the next node/wave boundary.  When a run ends in a corrupting fault
// (NumericError, MemoryCorruptionError) the pool's quarantine path retires
// the session — slab poison-scrubbed and canary-audited for a blast-radius
// diagnostic — and replaces it with a freshly constructed one rather than
// ever re-leasing possibly-corrupt memory.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/executor.hpp"
#include "serve/compiled_model.hpp"
#include "support/cancel.hpp"

namespace temco::serve {

/// How a batch should execute.  kDegraded is the circuit breaker's isolation
/// regime: the batch-1 variant with kernels pinned serial and numeric checks
/// forced on — slower, but each request fails alone and a fault is caught at
/// the node that produced it.
enum class RunMode { kNormal, kDegraded };

class Session {
 public:
  /// Allocates the slab (poison-filled when the model compiled with
  /// arena_canaries, zeroed otherwise) and binds one arena executor per
  /// batch variant to it.  All expensive work happens here, never in run.
  explicit Session(std::shared_ptr<const CompiledModel> model);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const CompiledModel& model() const { return *model_; }

  /// Bytes of arena slab this session keeps resident.
  std::int64_t arena_bytes() const { return model_->slab_bytes(); }

  /// The stop token every executor of this session polls.  The serving layer
  /// sets a deadline (or cancels) before/while a run is in flight and MUST
  /// reset() it between checkouts; the session never touches it on its own.
  support::CancelToken& cancel_token() { return token_; }

  /// Executes one micro-batch: gathers each request's inputs into the
  /// batch-k staging rows, runs the batch-k variant once, and splits the
  /// batched outputs back into one freshly allocated per-request tensor
  /// list.  `requests` must be non-empty, at most max_batch long, and every
  /// request must satisfy the model's compatibility predicate.  Outputs are
  /// bit-identical to running each request alone at batch 1 — kernels fix
  /// per-element accumulation order by geometry, independent of batch count
  /// (asserted across the zoo in tests/test_batched.cpp).  kDegraded
  /// requires a singleton batch and runs the hardened batch-1 executor.
  std::vector<std::vector<Tensor>> run_batch(
      const std::vector<const std::vector<Tensor>*>& requests,
      RunMode mode = RunMode::kNormal);

  /// Single-request sugar: run_batch of one, unwrapped.
  std::vector<Tensor> run(const std::vector<Tensor>& inputs);

  /// Quarantine hygiene: audits every guard band of the arena plans for
  /// bytes that no longer hold the canary pattern (a blast-radius estimate
  /// of what a corrupting fault touched; 0 when the model compiled without
  /// canaries), then poison-fills the whole slab so stale data can never be
  /// read as valid.  Called by SessionPool::quarantine before the session
  /// is destroyed; harmless to call on a healthy session.
  std::int64_t quarantine_scrub();

 private:
  std::shared_ptr<const CompiledModel> model_;
  /// Declared before the executors that hold its address: they die first.
  support::CancelToken token_;
  std::unique_ptr<float, void (*)(float*)> slab_;
  /// executors_[k-1] runs the batch-k variant; all bind the one slab_.
  std::vector<std::unique_ptr<runtime::Executor>> executors_;
  /// Hardened batch-1 variant for RunMode::kDegraded (serial kernels,
  /// check_numerics on); binds the same slab as the normal executors.
  std::unique_ptr<runtime::Executor> degraded_executor_;
  /// Max-batch staging storage; the batch-k views below alias its rows.
  std::vector<Tensor> staging_in_;
  std::vector<Tensor> staging_out_;
  /// views_in_[k-1][i]: the first k rows of staging_in_[i], shaped for batch
  /// k — prebuilt so steady-state runs allocate nothing but response tensors.
  std::vector<std::vector<Tensor>> views_in_;
  std::vector<std::vector<Tensor>> views_out_;
};

/// Fixed set of reusable sessions with blocking checkout.  The pool is the
/// serving runtime's memory ceiling: resident arena bytes are
/// size() * slab_bytes, decided at construction, independent of load.
class SessionPool {
 public:
  /// Monotonic counters for the quarantine path.
  struct Stats {
    std::uint64_t quarantined = 0;        ///< sessions retired after corrupting faults
    std::uint64_t replaced = 0;           ///< successfully rebuilt replacements
    std::uint64_t replace_failures = 0;   ///< replacement construction threw; pool shrank
    std::int64_t corrupt_band_bytes = 0;  ///< guard-band bytes found stomped at scrub time
  };

  SessionPool(std::shared_ptr<const CompiledModel> model, std::size_t size);

  /// RAII checkout: returns the session to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(SessionPool* pool, Session* session) : pool_(pool), session_(session) {}
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      pool_ = other.pool_;
      session_ = other.session_;
      other.pool_ = nullptr;
      other.session_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return session_ != nullptr; }
    Session* operator->() const { return session_; }
    Session& operator*() const { return *session_; }

    void release();

   private:
    friend class SessionPool;
    SessionPool* pool_ = nullptr;
    Session* session_ = nullptr;
  };

  /// Blocks until a session is free.  Throws ResourceExhaustedError if the
  /// pool has become defunct (every session quarantined and no replacement
  /// could be built) — blocking forever on a pool that can never refill is
  /// the one outcome worse than failing.
  Lease acquire();

  /// Non-blocking checkout; empty optional when every session is out.
  std::optional<Lease> try_acquire();

  /// Sessions currently owned by the pool (shrinks only on replacement
  /// failure during quarantine).
  std::size_t size() const;

  /// Sessions currently checked in (free).
  std::size_t available() const;

  /// Total arena bytes held resident by the pool.
  std::int64_t resident_bytes() const;

  /// The artifact every session of this pool serves.
  const CompiledModel& model() const { return *model_; }

  Stats stats() const;

  /// Retires the leased session after a corrupting fault: the slab is
  /// poison-scrubbed and canary-audited (Session::quarantine_scrub), the
  /// session destroyed, and a freshly constructed replacement takes its
  /// place in the pool — corrupt memory is never re-leased.  The Lease is
  /// consumed; it must be live and must belong to this pool.  Replacement
  /// construction happens outside the pool lock, so other sessions keep
  /// serving meanwhile; if construction throws, the pool shrinks instead
  /// (counted in Stats::replace_failures).
  void quarantine(Lease&& lease);

 private:
  friend class Lease;
  void put_back(Session* session);

  std::shared_ptr<const CompiledModel> model_;
  std::vector<std::unique_ptr<Session>> sessions_;
  mutable std::mutex mutex_;
  std::condition_variable free_cv_;
  std::vector<Session*> free_;
  Stats counters_;
};

}  // namespace temco::serve
