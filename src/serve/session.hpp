// Arena serving sessions and the session pool.
//
// A Session is the mutable half of the serving runtime: one preallocated
// arena slab plus one bound arena executor per batch variant of a shared
// CompiledModel.  Everything a run needs — the slab, the staging tensors
// batched requests are gathered into, the executors' bound views — is
// allocated at construction, so the steady-state path performs zero heap
// allocations and zero re-planning: check out a session, gather, run, split.
//
// Sessions are NOT thread-safe (the batch variants deliberately share one
// slab); the SessionPool provides the checkout protocol that keeps each
// session owned by at most one thread at a time.  Checkout is a Lease — an
// RAII handle that returns the session on destruction — so a session can
// never leak out of the pool on an exception path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/executor.hpp"
#include "serve/compiled_model.hpp"

namespace temco::serve {

class Session {
 public:
  /// Allocates the slab (poison-filled when the model compiled with
  /// arena_canaries, zeroed otherwise) and binds one arena executor per
  /// batch variant to it.  All expensive work happens here, never in run.
  explicit Session(std::shared_ptr<const CompiledModel> model);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const CompiledModel& model() const { return *model_; }

  /// Bytes of arena slab this session keeps resident.
  std::int64_t arena_bytes() const { return model_->slab_bytes(); }

  /// Executes one micro-batch: gathers each request's inputs into the
  /// batch-k staging rows, runs the batch-k variant once, and splits the
  /// batched outputs back into one freshly allocated per-request tensor
  /// list.  `requests` must be non-empty, at most max_batch long, and every
  /// request must satisfy the model's compatibility predicate.  Outputs are
  /// bit-identical to running each request alone at batch 1 — kernels fix
  /// per-element accumulation order by geometry, independent of batch count
  /// (asserted across the zoo in tests/test_batched.cpp).
  std::vector<std::vector<Tensor>> run_batch(
      const std::vector<const std::vector<Tensor>*>& requests);

  /// Single-request sugar: run_batch of one, unwrapped.
  std::vector<Tensor> run(const std::vector<Tensor>& inputs);

 private:
  std::shared_ptr<const CompiledModel> model_;
  std::unique_ptr<float, void (*)(float*)> slab_;
  /// executors_[k-1] runs the batch-k variant; all bind the one slab_.
  std::vector<std::unique_ptr<runtime::Executor>> executors_;
  /// Max-batch staging storage; the batch-k views below alias its rows.
  std::vector<Tensor> staging_in_;
  std::vector<Tensor> staging_out_;
  /// views_in_[k-1][i]: the first k rows of staging_in_[i], shaped for batch
  /// k — prebuilt so steady-state runs allocate nothing but response tensors.
  std::vector<std::vector<Tensor>> views_in_;
  std::vector<std::vector<Tensor>> views_out_;
};

/// Fixed set of reusable sessions with blocking checkout.  The pool is the
/// serving runtime's memory ceiling: resident arena bytes are
/// size() * slab_bytes, decided at construction, independent of load.
class SessionPool {
 public:
  SessionPool(std::shared_ptr<const CompiledModel> model, std::size_t size);

  /// RAII checkout: returns the session to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(SessionPool* pool, Session* session) : pool_(pool), session_(session) {}
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      pool_ = other.pool_;
      session_ = other.session_;
      other.pool_ = nullptr;
      other.session_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return session_ != nullptr; }
    Session* operator->() const { return session_; }
    Session& operator*() const { return *session_; }

    void release();

   private:
    SessionPool* pool_ = nullptr;
    Session* session_ = nullptr;
  };

  /// Blocks until a session is free.
  Lease acquire();

  /// Non-blocking checkout; empty optional when every session is out.
  std::optional<Lease> try_acquire();

  std::size_t size() const { return sessions_.size(); }

  /// Sessions currently checked in (free).
  std::size_t available() const;

  /// Total arena bytes held resident by the pool.
  std::int64_t resident_bytes() const;

 private:
  friend class Lease;
  void put_back(Session* session);

  std::vector<std::unique_ptr<Session>> sessions_;
  mutable std::mutex mutex_;
  std::condition_variable free_cv_;
  std::vector<Session*> free_;
};

}  // namespace temco::serve
