#include "serve/fleet.hpp"

#include <algorithm>
#include <utility>

#include "serve/fault.hpp"
#include "support/log.hpp"

namespace temco::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Batches between controller runs: long enough to smooth one noisy batch,
/// short enough that a traffic shift re-tunes within a few service times.
constexpr std::size_t kControlPeriod = 4;

/// EWMA weights.  Arrivals are per-request (many samples, heavy smoothing);
/// execution and occupancy are per-batch (few samples, faster tracking).
constexpr double kArrivalAlpha = 0.1;
constexpr double kBatchAlpha = 0.3;

}  // namespace

FleetServer::FleetServer(FleetOptions options) : options_(options) {
  TEMCO_CHECK_AS(options_.workers >= 1, InvalidGraphError) << "fleet needs at least one worker";
  TEMCO_CHECK_AS(options_.sessions_per_model >= 1, InvalidGraphError)
      << "fleet needs at least one session per model";
  TEMCO_CHECK_AS(options_.queue_capacity >= 1, InvalidGraphError)
      << "queue capacity must be at least 1";
  TEMCO_CHECK_AS(options_.max_batch_timeout.count() >= 0, InvalidGraphError)
      << "max_batch_timeout must be non-negative";
  TEMCO_CHECK_AS(options_.retry_backoff.count() >= 0, InvalidGraphError)
      << "retry_backoff must be non-negative";
  TEMCO_CHECK_AS(options_.breaker_threshold == 0 || options_.breaker_recovery >= 1,
                 InvalidGraphError)
      << "breaker_recovery must be at least 1 when the breaker is enabled";
  TEMCO_CHECK_AS(options_.default_slo.weight > 0.0, InvalidGraphError)
      << "fair-share weight must be positive";

  worker_pool_ = std::make_unique<ThreadPool>(options_.workers);
  // Same idiom as Server: the dispatcher is the worker pool's participating
  // caller, blocking in run() for the fleet's whole life.
  dispatcher_ = std::thread([this] {
    try {
      worker_pool_->run(options_.workers, [this](std::size_t) { worker_loop(); });
    } catch (...) {
      // A worker's scheduling logic itself failed (batch execution errors
      // are contained in execute_batch).  Stop admission and fail whatever
      // is still queued anywhere so no future is abandoned.
      std::vector<std::pair<ModelPtr, std::deque<RequestPtr>>> orphaned;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        for (auto& [name, model] : live_) {
          if (!model->queue.empty()) orphaned.emplace_back(model, std::move(model->queue));
          model->queue.clear();
        }
        for (const ModelPtr& model : draining_) {
          if (!model->queue.empty()) orphaned.emplace_back(model, std::move(model->queue));
          model->queue.clear();
        }
      }
      work_cv_.notify_all();
      const auto error = std::make_exception_ptr(
          CancelledError("fleet worker failed before this request ran"));
      for (auto& [model, queue] : orphaned) {
        for (const RequestPtr& request : queue) {
          resolve_error(*model, *request, error, model->metrics->cancelled);
        }
        model->metrics->queue_depth.store(0, std::memory_order_relaxed);
      }
    }
  });
}

FleetServer::~FleetServer() { shutdown(false); }

// ---- install / swap / remove ------------------------------------------------

void FleetServer::install_impl(const std::string& name,
                               std::shared_ptr<const CompiledModel> compiled,
                               std::optional<FleetOptions::ModelSlo> slo, bool must_exist) {
  FleetOptions::ModelSlo resolved = slo.value_or(options_.default_slo);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TEMCO_CHECK_AS(!stopping_, CancelledError) << "fleet is shutting down";
    const auto it = live_.find(name);
    TEMCO_CHECK_AS(!must_exist || it != live_.end(), InvalidGraphError)
        << "swap target '" << name << "' is not currently serving; install it first";
    // A swap inherits the incumbent's SLO — latency contracts survive deploys.
    if (!slo.has_value() && it != live_.end()) resolved = it->second->slo;
  }
  TEMCO_CHECK_AS(resolved.weight > 0.0, InvalidGraphError) << "fair-share weight must be positive";

  // Pool construction (slabs, executors) happens before the fleet lock is
  // taken, so a heavyweight deploy never stalls scheduling or other names.
  auto fresh = std::make_shared<Model>();
  fresh->name = name;
  fresh->compiled = compiled;
  fresh->pool = std::make_unique<SessionPool>(std::move(compiled), options_.sessions_per_model);
  fresh->slo = resolved;
  fresh->installed_at = std::chrono::steady_clock::now();
  fresh->metrics = std::make_shared<metrics::ModelMetrics>();
  fresh->metrics->arena_resident_bytes.store(fresh->pool->resident_bytes(),
                                             std::memory_order_relaxed);
  // The controller starts at the compiled ceiling with the full straggler
  // window and tightens from its first observations; an SLO clamps the cap
  // at the first control period once execution time is known.
  fresh->batch_cap = std::max<std::size_t>(1, fresh->compiled->max_batch());
  fresh->batch_timeout = options_.max_batch_timeout;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TEMCO_CHECK_AS(!stopping_, CancelledError) << "fleet is shutting down";
    fresh->generation = next_generation_++;
    const auto it = live_.find(name);
    if (it != live_.end()) {
      retire_locked(it->second);
      it->second = std::move(fresh);
    } else {
      live_.emplace(name, std::move(fresh));
    }
  }
  work_cv_.notify_all();
}

void FleetServer::retire_locked(const ModelPtr& model) {
  model->retired = true;
  // A generation with accepted work keeps being scheduled until it resolves
  // everything; one with none simply evaporates when the last ModelPtr drops.
  if (!model->queue.empty() || model->in_flight > 0) draining_.push_back(model);
}

void FleetServer::install(const std::string& name, std::shared_ptr<const CompiledModel> model) {
  install_impl(name, std::move(model), std::nullopt, /*must_exist=*/false);
}

void FleetServer::install(const std::string& name, std::shared_ptr<const CompiledModel> model,
                          FleetOptions::ModelSlo slo) {
  install_impl(name, std::move(model), slo, /*must_exist=*/false);
}

void FleetServer::install_file(const std::string& name, const std::string& path) {
  install_impl(name, CompiledModel::load(path), std::nullopt, /*must_exist=*/false);
}

void FleetServer::install_file(const std::string& name, const std::string& path,
                               FleetOptions::ModelSlo slo) {
  install_impl(name, CompiledModel::load(path), slo, /*must_exist=*/false);
}

void FleetServer::swap(const std::string& name, std::shared_ptr<const CompiledModel> model) {
  install_impl(name, std::move(model), std::nullopt, /*must_exist=*/true);
}

void FleetServer::swap_file(const std::string& name, const std::string& path) {
  install_impl(name, CompiledModel::load(path), std::nullopt, /*must_exist=*/true);
}

void FleetServer::remove(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(name);
    if (it == live_.end()) return;
    retire_locked(it->second);
    live_.erase(it);
  }
  work_cv_.notify_all();
}

void FleetServer::wait_drained() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return draining_.empty(); });
}

// ---- admission --------------------------------------------------------------

std::future<std::vector<Tensor>> FleetServer::submit(const std::string& name,
                                                     std::vector<Tensor> inputs,
                                                     SubmitOptions options) {
  for (;;) {
    ModelPtr model;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      TEMCO_CHECK_AS(!stopping_, CancelledError) << "fleet is shutting down";
      const auto it = live_.find(name);
      TEMCO_CHECK_AS(it != live_.end(), InvalidGraphError)
          << "no model installed under '" << name << "'";
      model = it->second;
    }
    metrics::ModelMetrics& met = *model->metrics;

    // Validation and deadline math outside the fleet lock.
    model->compiled->check_compatible(inputs);
    auto deadline = options.deadline;
    const auto now = std::chrono::steady_clock::now();
    if (options.timeout.count() > 0) deadline = std::min(deadline, now + options.timeout);
    if (deadline != std::chrono::steady_clock::time_point::max() && now >= deadline) {
      met.submitted.fetch_add(1, std::memory_order_relaxed);
      met.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
      TEMCO_CHECK_AS(false, DeadlineExceededError)
          << "request deadline already expired at submission";
    }

    auto request = std::make_shared<Request>();
    request->inputs = std::move(inputs);
    request->deadline = deadline;
    std::future<std::vector<Tensor>> future = request->promise.get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      TEMCO_CHECK_AS(!stopping_, CancelledError) << "fleet is shutting down";
      const auto it = live_.find(name);
      if (it == live_.end() || it->second != model) {
        // Hot-swapped (or removed and reinstalled) between lookup and
        // enqueue: route to the current generation, never the retiring one.
        inputs = std::move(request->inputs);
        continue;
      }
      met.submitted.fetch_add(1, std::memory_order_relaxed);
      if (model->queue.size() >= options_.queue_capacity) {
        met.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
        TEMCO_CHECK_AS(false, ResourceExhaustedError)
            << "admission queue for '" << name << "' is at capacity ("
            << options_.queue_capacity << " requests); back off and retry";
      }
      if (options_.slo_admission && model->exec_per_req_hat > 0.0) {
        // Forecast this request's queue wait from what is already committed.
        // The wait may consume at most half the latency budget (the tighter
        // of the model's p99 target and the request's remaining deadline):
        // a request admitted after spending its whole budget in line can
        // only finish at the knife edge, where the batching window,
        // execution, and fanout jitter tip it past the deadline — and under
        // sustained overload that is every admitted request.  The reserved
        // half is what keeps served answers comfortably inside the SLO.
        const double pending =
            static_cast<double>(model->queue.size()) + static_cast<double>(model->in_flight);
        const double lanes = static_cast<double>(
            std::max<std::size_t>(1, std::min(options_.workers, options_.sessions_per_model)));
        const double wait_s = pending * model->exec_per_req_hat / lanes;
        const double target_s = std::chrono::duration<double>(model->slo.target_p99).count();
        const bool blows_deadline =
            deadline != std::chrono::steady_clock::time_point::max() &&
            now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(2.0 * wait_s)) >=
                deadline;
        const bool blows_target = target_s > 0.0 && wait_s > 0.5 * target_s;
        if (blows_deadline || blows_target) {
          met.rejected_slo.fetch_add(1, std::memory_order_relaxed);
          TEMCO_CHECK_AS(false, SloUnmeetableError)
              << "predicted queue wait " << wait_s * 1e3 << " ms for '" << name
              << "' already blows the "
              << (blows_deadline ? "request deadline" : "model's p99 target")
              << "; shed load or relax the SLO";
        }
      }
      // Arrival-rate EWMA, fed by submit inter-arrival times.
      if (model->last_arrival.time_since_epoch().count() != 0) {
        const double dt = std::max(seconds_between(model->last_arrival, now), 1e-6);
        const double instant = 1.0 / dt;
        model->arrival_rate_hat = model->arrival_rate_hat == 0.0
                                      ? instant
                                      : (1.0 - kArrivalAlpha) * model->arrival_rate_hat +
                                            kArrivalAlpha * instant;
      }
      model->last_arrival = now;
      request->submitted_at = now;
      model->queue.push_back(std::move(request));
      met.accepted.fetch_add(1, std::memory_order_relaxed);
      met.queue_depth.store(static_cast<std::int64_t>(model->queue.size()),
                            std::memory_order_relaxed);
    }
    work_cv_.notify_one();
    return future;
  }
}

// ---- scheduling -------------------------------------------------------------

std::size_t FleetServer::total_queued_locked() const {
  std::size_t total = 0;
  for (const auto& [name, model] : live_) total += model->queue.size();
  for (const ModelPtr& model : draining_) total += model->queue.size();
  return total;
}

FleetServer::ModelPtr FleetServer::pick_model(SessionPool::Lease& lease) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<double, ModelPtr>> candidates;
  const auto consider = [&](const ModelPtr& model) {
    if (model->queue.empty()) return;
    if (model->pool->size() == 0) {
      // Defunct pool (every session quarantined, none rebuildable): this
      // queue can never run.  Fail it now or workers rescan it forever.
      const auto error = std::make_exception_ptr(ResourceExhaustedError(
          "session pool for '" + model->name +
          "' is defunct: every session was quarantined and no replacement could be constructed"));
      for (const RequestPtr& request : model->queue) {
        resolve_error(*model, *request, error, model->metrics->failed);
      }
      model->queue.clear();
      model->metrics->queue_depth.store(0, std::memory_order_relaxed);
      return;
    }
    // Weighted fair share: weight x age of the oldest queued request.  Age
    // grows without bound, so every backlogged model eventually outscores
    // everyone — no starvation; weight sets the service ratio meanwhile.
    const double age = std::max(seconds_between(model->queue.front()->submitted_at, now), 0.0);
    candidates.emplace_back(model->slo.weight * (age + 1e-6), model);
  };
  for (const auto& [name, model] : live_) consider(model);
  for (const ModelPtr& model : draining_) consider(model);

  // Retired generations whose queues just got defunct-failed may be done.
  const bool had_draining = !draining_.empty();
  draining_.remove_if(
      [](const ModelPtr& model) { return model->queue.empty() && model->in_flight == 0; });
  if (had_draining && draining_.empty()) drain_cv_.notify_all();

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [score, model] : candidates) {
    // A model with every session busy is skipped, not waited on: workers
    // flow to whoever can run NOW, and a slow model caps its own share at
    // its session count.
    std::optional<SessionPool::Lease> got = model->pool->try_acquire();
    if (got.has_value()) {
      lease = std::move(*got);
      return model;
    }
  }
  return nullptr;
}

void FleetServer::worker_loop() {
  for (;;) {
    ModelPtr model;
    SessionPool::Lease lease;
    std::vector<RequestPtr> batch;
    bool degraded = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        work_cv_.wait(lock, [this] { return stopping_ || total_queued_locked() > 0; });
        if (total_queued_locked() == 0) {
          if (stopping_) return;
          continue;
        }
        model = pick_model(lease);
        if (model != nullptr) break;
        if (stopping_ && total_queued_locked() == 0) return;
        // Queued work exists but every candidate's sessions are busy.
        // finish_batch notifies when a lease frees; the bounded wait is a
        // backstop against a notification racing this re-scan.
        work_cv_.wait_for(lock, std::chrono::microseconds(100));
      }

      // Coalesce a micro-batch under the model's adaptive cap/timeout.
      // Degraded mode (per-model breaker open) forces singletons.
      degraded = model->degraded.load(std::memory_order_relaxed);
      const std::size_t cap =
          degraded ? 1
                   : std::max<std::size_t>(
                         1, std::min(model->batch_cap, model->compiled->max_batch()));
      const auto window = std::chrono::steady_clock::now() + model->batch_timeout;
      batch.push_back(std::move(model->queue.front()));
      model->queue.pop_front();
      while (batch.size() < cap) {
        if (!model->queue.empty()) {
          batch.push_back(std::move(model->queue.front()));
          model->queue.pop_front();
          continue;
        }
        if (stopping_ || model->retired || model->batch_timeout.count() == 0) break;
        if (work_cv_.wait_until(lock, window) == std::cv_status::timeout) break;
      }

      const auto now = std::chrono::steady_clock::now();
      for (const RequestPtr& request : batch) {
        model->metrics->queue_wait.record_seconds(
            seconds_between(request->submitted_at, now));
      }
      model->in_flight += static_cast<std::int64_t>(batch.size());
      model->metrics->in_flight.store(model->in_flight, std::memory_order_relaxed);
      model->metrics->queue_depth.store(static_cast<std::int64_t>(model->queue.size()),
                                        std::memory_order_relaxed);
    }

    const std::size_t claimed = batch.size();
    BatchOutcome outcome;
    execute_batch(*model, std::move(lease), batch, degraded, outcome);
    finish_batch(model, claimed, outcome);
  }
}

void FleetServer::finish_batch(const ModelPtr& model, std::size_t claimed,
                               const BatchOutcome& outcome) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model->in_flight -= static_cast<std::int64_t>(claimed);
    model->metrics->in_flight.store(model->in_flight, std::memory_order_relaxed);
    if (outcome.executed > 0) {
      const double per_req = outcome.exec_seconds / static_cast<double>(outcome.executed);
      model->exec_per_req_hat = model->exec_per_req_hat == 0.0
                                    ? per_req
                                    : (1.0 - kBatchAlpha) * model->exec_per_req_hat +
                                          kBatchAlpha * per_req;
      model->occupancy_hat = model->occupancy_hat == 0.0
                                 ? static_cast<double>(outcome.executed)
                                 : (1.0 - kBatchAlpha) * model->occupancy_hat +
                                       kBatchAlpha * static_cast<double>(outcome.executed);
    }
    for (const double ms : outcome.latencies_ms) {
      model->recent_ms[model->recent_count % model->recent_ms.size()] = ms;
      ++model->recent_count;
    }
    adapt_locked(*model);
    if (model->retired && model->queue.empty() && model->in_flight == 0) {
      draining_.remove(model);
      drained = draining_.empty();
    }
  }
  // The released lease may make a skipped model runnable: rescan everyone.
  work_cv_.notify_all();
  if (drained) drain_cv_.notify_all();
}

void FleetServer::adapt_locked(Model& model) {
  if (++model.batches_since_control < kControlPeriod) return;
  model.batches_since_control = 0;

  const std::size_t ceiling = std::max<std::size_t>(1, model.compiled->max_batch());
  const double exec1 = model.exec_per_req_hat;
  const double lambda = model.arrival_rate_hat;
  const double target_s = std::chrono::duration<double>(model.slo.target_p99).count();

  // Recent p99 from the latency ring (recomputed here, off the hot path).
  double p99_s = 0.0;
  const std::size_t n = std::min(model.recent_count, model.recent_ms.size());
  if (n >= 8) {
    std::array<double, 128> scratch;
    std::copy_n(model.recent_ms.begin(), n, scratch.begin());
    const std::size_t rank = static_cast<std::size_t>(0.99 * static_cast<double>(n - 1));
    std::nth_element(scratch.begin(), scratch.begin() + rank, scratch.begin() + n);
    p99_s = scratch[rank] / 1e3;
  }

  if (target_s > 0.0 && p99_s > target_s) {
    // Latency emergency: halve the cap and stop waiting for stragglers.
    // Recovery is additive below — classic AIMD, stable under feedback lag.
    model.batch_cap = std::max<std::size_t>(1, model.batch_cap / 2);
    model.batch_timeout = std::chrono::microseconds(0);
    return;
  }

  // SLO clamp: a full batch's execution must fit inside half the p99 target,
  // leaving the other half for queueing and batch formation.
  std::size_t limit = ceiling;
  if (target_s > 0.0 && exec1 > 0.0) {
    limit = std::clamp<std::size_t>(static_cast<std::size_t>(0.5 * target_s / exec1),
                                    std::size_t{1}, ceiling);
  }

  // Little's law: lambda x exec(cap) arrivals land during one batch run.
  // When they would fill the batch (or a backlog already does), there is
  // demand for a bigger one; when batches run half-empty, shrink so light
  // traffic is not taxed with straggler waits.
  const double absorbed = lambda * exec1 * static_cast<double>(model.batch_cap);
  if (absorbed >= static_cast<double>(model.batch_cap) || model.queue.size() >= model.batch_cap) {
    model.batch_cap = std::min(model.batch_cap + 1, limit);
  } else if (model.batch_cap > limit) {
    model.batch_cap = limit;
  } else if (model.batch_cap > 1 && model.occupancy_hat < 0.5 * static_cast<double>(model.batch_cap)) {
    --model.batch_cap;
  }

  if (target_s > 0.0) {
    // Spend at most a quarter of the remaining SLO slack waiting for
    // stragglers; the rest absorbs queueing and estimation error.
    const double slack =
        exec1 > 0.0 ? target_s - exec1 * static_cast<double>(model.batch_cap) : target_s;
    const auto wait = std::chrono::microseconds(
        slack > 0.0 ? static_cast<std::int64_t>(slack / 4.0 * 1e6) : 0);
    model.batch_timeout = std::clamp(wait, std::chrono::microseconds(0),
                                     options_.max_batch_timeout);
  } else if (lambda > 0.0 && model.batch_cap > 1) {
    // No SLO: wait about as long as the batch takes to fill at the current
    // arrival rate — longer buys nothing, shorter wastes occupancy.
    const double fill_s = static_cast<double>(model.batch_cap - 1) / lambda;
    const auto wait = std::chrono::microseconds(static_cast<std::int64_t>(fill_s * 1e6));
    model.batch_timeout = std::clamp(wait, std::chrono::microseconds(0),
                                     options_.max_batch_timeout);
  } else {
    model.batch_timeout = options_.max_batch_timeout;
  }
}

// ---- execution (ported from Server::execute_batch, per-model state) ---------

bool FleetServer::resolve_value(Model& model, Request& request, std::vector<Tensor> value) {
  if (!request.claim()) return false;
  metrics::ModelMetrics& met = *model.metrics;
  const auto now = std::chrono::steady_clock::now();
  met.latency.record_seconds(seconds_between(request.submitted_at, now));
  if (request.expired(now)) {
    // Strict-SLO rule: an accepted request never yields a usable answer
    // late.  The conversion is counted — each one is an admission-control
    // miss the bench and ops dashboards must see.
    met.value_past_deadline.fetch_add(1, std::memory_order_relaxed);
    met.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(DeadlineExceededError(
        "request completed after its deadline; result withheld under the strict SLO rule")));
    return false;
  }
  met.completed.fetch_add(1, std::memory_order_relaxed);
  request.promise.set_value(std::move(value));
  return true;
}

bool FleetServer::resolve_error(Model& model, Request& request, const std::exception_ptr& error,
                                std::atomic<std::uint64_t>& counter) {
  if (!request.claim()) return false;
  model.metrics->latency.record_seconds(
      seconds_between(request.submitted_at, std::chrono::steady_clock::now()));
  counter.fetch_add(1, std::memory_order_relaxed);
  request.promise.set_exception(error);
  return true;
}

void FleetServer::fail_batch(Model& model, std::vector<RequestPtr>& batch,
                             const std::exception_ptr& error) {
  for (const RequestPtr& request : batch) {
    resolve_error(model, *request, error, model.metrics->failed);
  }
  batch.clear();
}

void FleetServer::sweep_expired(Model& model, std::vector<RequestPtr>& batch) {
  const auto now = std::chrono::steady_clock::now();
  std::exception_ptr error;
  std::vector<RequestPtr> keep;
  keep.reserve(batch.size());
  for (RequestPtr& request : batch) {
    if (request->expired(now)) {
      if (error == nullptr) {
        error = std::make_exception_ptr(
            DeadlineExceededError("request deadline expired before execution"));
      }
      resolve_error(model, *request, error, model.metrics->deadline_expired);
    } else {
      keep.push_back(std::move(request));
    }
  }
  batch.swap(keep);
}

void FleetServer::backoff_sleep(std::size_t attempt) {
  if (options_.retry_backoff.count() <= 0) return;
  double jitter;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    jitter = std::uniform_real_distribution<double>(0.5, 1.5)(rng_);
  }
  const std::size_t doublings = std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 10);
  const double scaled =
      static_cast<double>(options_.retry_backoff.count()) * static_cast<double>(1ull << doublings);
  const auto delay = std::chrono::microseconds(static_cast<std::int64_t>(scaled * jitter));
  // Interruptible: shutdown ends the nap early so drains never wait out a
  // retry schedule.  Submit notifications wake it spuriously; the predicate
  // sends it back to sleep for the remainder.
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait_for(lock, delay, [this] { return stopping_; });
}

void FleetServer::breaker_failure(Model& model) {
  if (options_.breaker_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++model.consecutive_failures;
  model.probe_successes = 0;
  if (!model.degraded.load(std::memory_order_relaxed) &&
      model.consecutive_failures >= options_.breaker_threshold) {
    model.degraded.store(true, std::memory_order_relaxed);
    model.metrics->breaker_trips.fetch_add(1, std::memory_order_relaxed);
    TEMCO_WARN() << "circuit breaker tripped for '" << model.name << "' after "
                 << model.consecutive_failures
                 << " consecutive batch failures; degrading to singleton batches";
  }
}

void FleetServer::breaker_success(Model& model) {
  if (options_.breaker_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  model.consecutive_failures = 0;
  if (!model.degraded.load(std::memory_order_relaxed)) return;
  if (++model.probe_successes >= options_.breaker_recovery) {
    model.degraded.store(false, std::memory_order_relaxed);
    model.probe_successes = 0;
    model.metrics->breaker_restores.fetch_add(1, std::memory_order_relaxed);
    TEMCO_INFO() << "circuit breaker closed for '" << model.name << "' after "
                 << options_.breaker_recovery << " clean probes; normal batching restored";
  }
}

void FleetServer::execute_batch(Model& model, SessionPool::Lease lease,
                                std::vector<RequestPtr>& batch, bool degraded,
                                BatchOutcome& outcome) {
  metrics::ModelMetrics& met = *model.metrics;
  if (degraded) met.degraded_batches.fetch_add(1, std::memory_order_relaxed);
  std::size_t attempt = 0;
  for (;;) {
    // Deadline check at batch formation (and again before every retry —
    // backoff may have outlived someone's SLO).
    sweep_expired(model, batch);
    if (batch.empty()) return;

    if (!lease) {
      // A retry released its session; get another (blocking is fine here —
      // the retry path is rare and this model's pool is the right thing to
      // wait on).
      try {
        lease = model.pool->acquire();
      } catch (...) {
        breaker_failure(model);
        fail_batch(model, batch, std::current_exception());
        return;
      }
    }

    // Arm the session token with the tightest deadline in the batch; the
    // executor polls it between nodes/waves.
    support::CancelToken& token = lease->cancel_token();
    token.reset();
    auto deadline = std::chrono::steady_clock::time_point::max();
    for (const RequestPtr& request : batch) deadline = std::min(deadline, request->deadline);
    if (deadline != std::chrono::steady_clock::time_point::max()) token.set_deadline(deadline);

    try {
      std::vector<const std::vector<Tensor>*> requests;
      requests.reserve(batch.size());
      for (const RequestPtr& request : batch) requests.push_back(&request->inputs);
      const auto started = std::chrono::steady_clock::now();
      std::vector<std::vector<Tensor>> responses =
          lease->run_batch(requests, degraded ? RunMode::kDegraded : RunMode::kNormal);
      const double exec_s = seconds_between(started, std::chrono::steady_clock::now());
      token.reset();
      lease.release();  // free the session before the (cheap) promise fanout

      met.record_batch(batch.size(), exec_s);
      outcome.exec_seconds = exec_s;
      outcome.executed = batch.size();
      breaker_success(model);
      for (std::size_t r = 0; r < batch.size(); ++r) {
        const auto& request = batch[r];
        const double ms = seconds_between(request->submitted_at,
                                          std::chrono::steady_clock::now()) *
                          1e3;
        if (resolve_value(model, *request, std::move(responses[r]))) {
          outcome.latencies_ms.push_back(ms);
        }
      }
      batch.clear();
      return;
    } catch (...) {
      token.reset();
      const std::exception_ptr error = std::current_exception();
      const FaultClass fault = classify_fault(error);

      if (fault == FaultClass::kCorrupting) {
        // Terminal for the session too: its memory is suspect.  The pool
        // scrubs, audits, and replaces it; this lease is consumed.
        met.quarantined.fetch_add(1, std::memory_order_relaxed);
        model.pool->quarantine(std::move(lease));
        met.arena_resident_bytes.store(model.pool->resident_bytes(), std::memory_order_relaxed);
      } else {
        lease.release();
      }

      switch (fault) {
        case FaultClass::kDeadline: {
          // The batch outlived its SLO.  That is the client's answer, not a
          // server-health signal: no breaker failure, no retry.
          for (const RequestPtr& request : batch) {
            resolve_error(model, *request, error, met.deadline_expired);
          }
          batch.clear();
          return;
        }
        case FaultClass::kCancelled: {
          for (const RequestPtr& request : batch) {
            resolve_error(model, *request, error, met.cancelled);
          }
          batch.clear();
          return;
        }
        case FaultClass::kTransient: {
          bool stopping;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping = stopping_;
          }
          if (attempt < options_.max_retries && !stopping) {
            ++attempt;
            met.retries.fetch_add(1, std::memory_order_relaxed);
            backoff_sleep(attempt);
            continue;  // re-sweep deadlines, re-acquire a session, re-run
          }
          break;  // retry budget exhausted (or draining): terminal
        }
        case FaultClass::kCorrupting:
        case FaultClass::kTerminal:
          break;
      }

      // Fault isolation: exactly this batch's requests observe the error;
      // the worker and every other model stay serviceable.
      breaker_failure(model);
      fail_batch(model, batch, error);
      return;
    }
  }
}

// ---- shutdown / introspection -----------------------------------------------

void FleetServer::shutdown(bool drain) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::vector<std::pair<ModelPtr, std::deque<RequestPtr>>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    stopping_ = true;
    if (!drain) {
      for (auto& [name, model] : live_) {
        if (!model->queue.empty()) orphaned.emplace_back(model, std::move(model->queue));
        model->queue.clear();
      }
      for (const ModelPtr& model : draining_) {
        if (!model->queue.empty()) orphaned.emplace_back(model, std::move(model->queue));
        model->queue.clear();
      }
    }
  }
  work_cv_.notify_all();
  const auto error = std::make_exception_ptr(
      CancelledError("request cancelled: fleet shut down before it ran"));
  for (auto& [model, queue] : orphaned) {
    for (const RequestPtr& request : queue) {
      resolve_error(*model, *request, error, model->metrics->cancelled);
    }
    model->metrics->queue_depth.store(0, std::memory_order_relaxed);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  worker_pool_->shutdown();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    joined_ = true;
    // Everything in flight has resolved (workers are joined); retired
    // generations are done by definition now.
    draining_.clear();
  }
  drain_cv_.notify_all();
}

std::vector<std::string> FleetServer::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> result;
  result.reserve(live_.size());
  for (const auto& [name, model] : live_) result.push_back(name);
  return result;
}

std::shared_ptr<const CompiledModel> FleetServer::model(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(name);
  TEMCO_CHECK_AS(it != live_.end(), InvalidGraphError)
      << "no model installed under '" << name << "'";
  return it->second->compiled;
}

std::vector<metrics::ModelSnapshot> FleetServer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<metrics::ModelSnapshot> result;
  result.reserve(live_.size());
  for (const auto& [name, model] : live_) {
    metrics::ModelSnapshot s = metrics::snapshot(*model->metrics);
    s.name = name;
    s.uptime_seconds = seconds_between(model->installed_at, now);
    s.requests_per_second =
        s.uptime_seconds > 0.0 ? static_cast<double>(s.completed) / s.uptime_seconds : 0.0;
    s.batch_cap = model->batch_cap;
    s.batch_timeout_us = model->batch_timeout.count();
    s.arrival_rate_hat = model->arrival_rate_hat;
    s.slo_target_p99_ms =
        std::chrono::duration<double, std::milli>(model->slo.target_p99).count();
    s.weight = model->slo.weight;
    s.degraded = model->degraded.load(std::memory_order_relaxed);
    result.push_back(std::move(s));
  }
  return result;
}

std::string FleetServer::metrics_json() const { return metrics::to_json(snapshot()); }

}  // namespace temco::serve
