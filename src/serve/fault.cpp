#include "serve/fault.hpp"

#include "support/error.hpp"

namespace temco::serve {

FaultClass classify_fault(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const TransientFaultError&) {
    return FaultClass::kTransient;
  } catch (const ResourceExhaustedError&) {
    return FaultClass::kTransient;
  } catch (const DeadlineExceededError&) {
    return FaultClass::kDeadline;
  } catch (const CancelledError&) {
    return FaultClass::kCancelled;
  } catch (const MemoryCorruptionError&) {
    return FaultClass::kCorrupting;
  } catch (const NumericError&) {
    return FaultClass::kCorrupting;
  } catch (...) {
    return FaultClass::kTerminal;
  }
}

}  // namespace temco::serve
