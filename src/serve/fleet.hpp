// Fleet server: many compiled models behind one shared worker pool, with
// weighted fair-share scheduling, SLO-aware admission, and per-model
// adaptive micro-batching.
//
// Why a fleet instead of N independent Servers: TeMCO's compressed slabs
// make model *residency* cheap, but N static servers still partition the
// CPU — each model owns worker threads that idle when its traffic lulls
// while another model's queue backs up.  The fleet pools the workers and
// lets instantaneous demand, not a static partition, decide where they go.
//
// Scheduling (weighted fair share): an idle worker scores every model with
// a non-empty queue as  weight x age(oldest queued request)  and serves the
// highest score whose session pool has a free session.  Age keeps any
// backlogged model's score growing without bound, so no model starves while
// another has headroom; weight sets the *ratio* at which two backlogged
// models are served, not an absolute priority.  Models whose sessions are
// all busy are skipped, never waited on — a slow model cannot capture
// workers beyond its own session count (head-of-line isolation).
//
// Adaptive micro-batching: each model's batch ceiling and straggler timeout
// are tuned online, per control period, from three observed signals —
//  - arrival rate (EWMA over submit inter-arrival times),
//  - per-request execution time (EWMA over batch runs),
//  - recent end-to-end p99 (ring of the last completions).
// The controller grows the ceiling toward the demand a batch can absorb
// (Little's law: lambda x exec), clamps it so a full batch's execution fits
// inside half the latency SLO, halves it (and zeroes the timeout) whenever
// the observed p99 breaches the SLO, and derives the straggler timeout from
// remaining SLO slack (or expected fill time when the model has no SLO).
//
// Admission control: submit() predicts this request's queue wait as
// (queued + in_flight) x exec_per_request / lanes and rejects with
// SloUnmeetableError — at submit time, queue capacity notwithstanding —
// when that wait would consume more than HALF the request's remaining
// deadline or the model's p99 target.  Half, not all: a request admitted
// after spending its whole budget in line can only ever finish at the
// deadline's knife edge, where batching windows, execution, and fanout
// jitter tip it late — queueing may spend half the budget, the rest stays
// reserved for actually serving the answer.  Under sustained overload this
// is the difference between shedding doomed work at submit (microseconds)
// and serving answers nobody can use (a full service time each).  Accepted
// requests obey the strict-SLO rule: a value that
// would resolve past its deadline is converted to DeadlineExceededError
// before the promise fanout, so an accepted request NEVER yields a usable
// answer late (metrics count such conversions as value_past_deadline; the
// bench asserts the count stays 0 when admission is doing its job).
//
// Fault tolerance is the Server's machinery, per model: transient faults
// retry with jittered exponential backoff, corrupting faults quarantine the
// session, a per-model circuit breaker degrades that model (and only that
// model) to singleton batches on the hardened executor.  Fault classes come
// from serve/fault.hpp, shared with Server, so the two paths cannot drift.
//
// Hot swap: install() over a live name (or swap(), which insists on one)
// builds the replacement pool outside the fleet lock, then atomically
// redirects the name.  The displaced generation keeps its queue and keeps
// being scheduled — fair share and all — until every request it accepted
// has resolved, then evaporates; nothing is dropped and no submit ever
// blocks on a deploy.  wait_drained() lets tests and deploy scripts pend on
// that evaporation.
//
// Observability: every model owns a metrics::ModelMetrics (lock-free
// recording); snapshot()/metrics_json() export counters, gauges, latency
// histograms, and the adaptive-batcher state in one consistent-enough read.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace temco::serve {

struct FleetOptions {
  /// Latency SLO and scheduling weight for one model.
  struct ModelSlo {
    /// End-to-end p99 target; 0 (default) means no latency SLO — the model
    /// is batched for throughput and admission never rejects on time.
    std::chrono::milliseconds target_p99{0};

    /// Fair-share weight: the served-rate ratio between two backlogged
    /// models equals their weight ratio.  Must be positive.
    double weight = 1.0;
  };

  /// Worker lanes shared by every installed model.
  std::size_t workers = 4;

  /// Sessions (arena slabs) per installed model.  Also each model's ceiling
  /// on concurrently executing batches — a model can never hold more
  /// workers than sessions, which is what isolates a slow model.
  std::size_t sessions_per_model = 2;

  /// Admission queue bound, per model.
  std::size_t queue_capacity = 256;

  /// Ceiling on the adaptive straggler timeout.  The controller tunes each
  /// model's live timeout within [0, this].
  std::chrono::microseconds max_batch_timeout{500};

  /// Defaults applied to install() calls that don't carry their own SLO.
  ModelSlo default_slo{};

  /// Predictive admission: reject a submit whose forecast queue wait
  /// already blows its deadline or the model's p99 target.  On by default;
  /// off reproduces plain bounded-queue admission.
  bool slo_admission = true;

  // ---- fault machinery, per model (same semantics as ServerOptions) ---------
  std::size_t max_retries = 2;
  std::chrono::microseconds retry_backoff{200};
  std::size_t breaker_threshold = 3;
  std::size_t breaker_recovery = 8;
};

/// Many models, one worker pool.  See the file comment for the contract.
/// Thread-safe: any number of submitters, installers, and snapshot readers.
class FleetServer {
 public:
  explicit FleetServer(FleetOptions options = {});

  /// Equivalent to shutdown(false).
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Installs `model` under `name` with the fleet's default SLO (or `slo`).
  /// Replacing a live name hot-swaps it: the old generation drains in the
  /// background (see wait_drained), new submits land on the new one.
  void install(const std::string& name, std::shared_ptr<const CompiledModel> model);
  void install(const std::string& name, std::shared_ptr<const CompiledModel> model,
               FleetOptions::ModelSlo slo);

  /// Loads an artifact file (CompiledModel::load) and installs it.
  void install_file(const std::string& name, const std::string& path);
  void install_file(const std::string& name, const std::string& path,
                    FleetOptions::ModelSlo slo);

  /// Hot swap: like install, but throws InvalidGraphError when `name` is
  /// not currently serving.  The new generation inherits the old one's SLO.
  void swap(const std::string& name, std::shared_ptr<const CompiledModel> model);
  void swap_file(const std::string& name, const std::string& path);

  /// Stops serving `name`: its accepted requests drain, new submits get
  /// InvalidGraphError.  No-op for an unknown name.
  void remove(const std::string& name);

  /// Blocks until every hot-swapped-out or removed generation has resolved
  /// all the requests it accepted.
  void wait_drained();

  /// Enqueues one request for `name`.  Throws InvalidGraphError (unknown
  /// name), ShapeError (incompatible inputs), CancelledError (shutting
  /// down), ResourceExhaustedError (queue full), DeadlineExceededError
  /// (deadline already expired), or SloUnmeetableError (predicted wait
  /// blows the deadline/SLO — shed load, don't retry).
  std::future<std::vector<Tensor>> submit(const std::string& name, std::vector<Tensor> inputs,
                                          SubmitOptions options = {});

  /// Stops admission and joins the workers.  drain=true completes every
  /// accepted request first; drain=false fails still-queued requests with
  /// CancelledError.  Idempotent.
  void shutdown(bool drain);

  /// Names currently serving (draining generations excluded), unordered.
  std::vector<std::string> names() const;

  /// The artifact currently serving `name`; throws InvalidGraphError if none.
  std::shared_ptr<const CompiledModel> model(const std::string& name) const;

  /// Frozen metrics for every live model, one ModelSnapshot each.
  std::vector<metrics::ModelSnapshot> snapshot() const;

  /// snapshot() rendered as one JSON document ({"models": [...]}).
  std::string metrics_json() const;

 private:
  struct Request {
    std::vector<Tensor> inputs;
    std::promise<std::vector<Tensor>> promise;
    std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
    std::chrono::steady_clock::time_point submitted_at;
    std::atomic<bool> resolved{false};

    bool claim() {
      bool expected = false;
      return resolved.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
    }
    bool expired(std::chrono::steady_clock::time_point now) const {
      return deadline != std::chrono::steady_clock::time_point::max() && now >= deadline;
    }
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// One installed model generation.  Queue, adaptive state, and breaker
  /// bookkeeping are guarded by the fleet mutex_ (they are touched only at
  /// submit/pick/post-batch boundaries — execution itself runs unlocked);
  /// metrics are lock-free atomics recorded from anywhere.
  struct Model {
    std::string name;
    std::uint64_t generation = 0;
    std::shared_ptr<const CompiledModel> compiled;
    std::unique_ptr<SessionPool> pool;
    FleetOptions::ModelSlo slo;
    std::chrono::steady_clock::time_point installed_at;
    std::shared_ptr<metrics::ModelMetrics> metrics;

    std::deque<RequestPtr> queue;
    std::int64_t in_flight = 0;
    bool retired = false;  ///< swapped out or removed; drains, takes no submits

    // ---- adaptive micro-batcher state --------------------------------------
    std::size_t batch_cap = 1;
    std::chrono::microseconds batch_timeout{0};
    double arrival_rate_hat = 0.0;    ///< req/s EWMA
    double exec_per_req_hat = 0.0;    ///< seconds, EWMA over batch runs
    double occupancy_hat = 0.0;       ///< requests per batch, EWMA
    std::chrono::steady_clock::time_point last_arrival;
    std::array<double, 128> recent_ms{};  ///< ring of recent end-to-end latencies
    std::size_t recent_count = 0;
    std::size_t batches_since_control = 0;

    // ---- per-model circuit breaker -----------------------------------------
    std::size_t consecutive_failures = 0;
    std::size_t probe_successes = 0;
    std::atomic<bool> degraded{false};
  };
  using ModelPtr = std::shared_ptr<Model>;

  /// What one execute_batch pass feeds back into the adaptive controller.
  struct BatchOutcome {
    std::vector<double> latencies_ms;  ///< end-to-end, values delivered in time
    double exec_seconds = 0.0;         ///< successful run's wall time
    std::size_t executed = 0;          ///< its batch size (0: batch never ran)
  };

  void install_impl(const std::string& name, std::shared_ptr<const CompiledModel> compiled,
                    std::optional<FleetOptions::ModelSlo> slo, bool must_exist);
  void retire_locked(const ModelPtr& model);

  void worker_loop();
  /// Highest-score runnable model (non-empty queue + free session), with its
  /// lease.  Returns nullptr when nothing is runnable right now.
  ModelPtr pick_model(SessionPool::Lease& lease);
  void execute_batch(Model& model, SessionPool::Lease lease, std::vector<RequestPtr>& batch,
                     bool degraded, BatchOutcome& outcome);
  void finish_batch(const ModelPtr& model, std::size_t claimed, const BatchOutcome& outcome);
  void adapt_locked(Model& model);

  bool resolve_value(Model& model, Request& request, std::vector<Tensor> value);
  bool resolve_error(Model& model, Request& request, const std::exception_ptr& error,
                     std::atomic<std::uint64_t>& counter);
  void fail_batch(Model& model, std::vector<RequestPtr>& batch, const std::exception_ptr& error);
  void sweep_expired(Model& model, std::vector<RequestPtr>& batch);
  void backoff_sleep(std::size_t attempt);
  void breaker_failure(Model& model);
  void breaker_success(Model& model);
  std::size_t total_queued_locked() const;

  FleetOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< new work, freed sessions, shutdown
  std::condition_variable drain_cv_;  ///< a retired generation fully drained
  std::map<std::string, ModelPtr> live_;  ///< guarded by mutex_
  std::list<ModelPtr> draining_;          ///< guarded by mutex_
  std::uint64_t next_generation_ = 1;     ///< guarded by mutex_
  bool stopping_ = false;                 ///< guarded by mutex_
  bool joined_ = false;                   ///< guarded by mutex_
  std::mutex shutdown_mutex_;

  std::unique_ptr<ThreadPool> worker_pool_;
  std::thread dispatcher_;

  std::mutex rng_mutex_;
  std::mt19937_64 rng_{0xf1ee7c0de5e17ull};  ///< guarded by rng_mutex_
};

}  // namespace temco::serve
