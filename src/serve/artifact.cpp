#include "serve/artifact.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <vector>

#include "ir/serialize.hpp"
#include "kernels/gemm.hpp"
#include "kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/liveness.hpp"
#include "support/align.hpp"
#include "support/checksum.hpp"

namespace temco::serve {

// The format comment in the header promises little-endian integers; on a
// big-endian target pod() would write native order and silently produce
// incompatible files, so refuse to build there instead.
static_assert(std::endian::native == std::endian::little,
              "the artifact format is little-endian; big-endian targets need byte swaps");

namespace {

using ir::wire::Reader;
using ir::wire::Writer;
using support::fnv1a64;

/// In-file alignment of every section start; covers kTensorAlignment so
/// in-place payloads stay aligned relative to any 64-aligned base.
constexpr std::size_t kSectionAlignment = 64;

/// The packed-weight section additionally starts on a page boundary so an
/// mmap of the file (page-aligned by definition) yields page-aligned blobs.
constexpr std::size_t kWeightSectionAlignment = support::kMappedFileAlignment;

constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kTableEntryBytes = 32;

/// Plausibility ceiling on batch variants per artifact; far above any real
/// micro-batcher and small enough that a hostile count cannot drive the
/// loader into gigabytes of variant restamping before a later check fires.
constexpr std::uint64_t kMaxArtifactBatch = 4096;

/// Ceiling on any single byte-count field read from a plan; generous (1 TiB)
/// but low enough that sums and offset+size additions cannot overflow i64.
constexpr std::int64_t kMaxPlanBytes = std::int64_t{1} << 40;

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

void write_bool(Writer& out, bool v) { out.pod(static_cast<std::uint8_t>(v ? 1 : 0)); }

bool read_bool(Reader& in, const char* what) {
  const auto raw = in.pod<std::uint8_t>();
  TEMCO_CHECK_AS(raw <= 1, InvalidGraphError)
      << what << ": boolean byte " << static_cast<int>(raw) << " is neither 0 nor 1";
  return raw != 0;
}

// ---- meta section -----------------------------------------------------------

/// Byte counts stored in meta that the loader recomputes from the other
/// sections and cross-checks; a mismatch means the sections disagree with
/// each other even though each one checksums clean.
struct MetaCounts {
  std::int64_t slab_bytes = 0;
  std::int64_t weight_bytes = 0;
  std::int64_t packed_bytes = 0;
};

void write_meta(Writer& out, const CompiledModel& model) {
  out.pod(model.pack_layout_version());
  out.pod(static_cast<std::uint8_t>(model.kernel_isa()));
  const CompileOptions& opt = model.options();
  write_bool(out, opt.optimize);
  write_bool(out, opt.check_numerics);
  write_bool(out, opt.arena_canaries);
  out.pod(static_cast<std::uint64_t>(opt.max_batch));
  out.pod(static_cast<std::uint64_t>(opt.intra_op_threads));
  // v2: the arena budget the schedule was searched under (0 = unconstrained).
  out.pod(opt.max_arena_bytes);

  const core::TemcoOptions& t = opt.temco;
  write_bool(out, t.enable_skip_opt);
  write_bool(out, t.enable_transforms);
  write_bool(out, t.enable_fusion);
  write_bool(out, t.prefer_merged_lconv);
  out.pod(t.distance_threshold);
  out.pod(t.compute_threshold_scale);
  out.pod(t.memory_slack);
  out.pod(static_cast<std::int32_t>(t.max_restore_depth));
  out.pod(t.max_arena_bytes);  // v2: pipeline-level budget knob
  write_bool(out, t.verify_passes);
  write_bool(out, t.numeric_oracle);
  out.pod(t.oracle_tolerance);
  out.pod(t.oracle_seed);

  const core::OptimizeStats& s = model.stats();
  for (const int v : {s.skips_found, s.skips_optimized, s.skips_rejected_structure,
                      s.skips_rejected_compute, s.skips_rejected_memory,
                      s.restore_copies_inserted, s.concat_splits, s.lconv_merges, s.add_merges,
                      s.upsample_commutes, s.fused_kernels, s.dce_removed}) {
    out.pod(static_cast<std::int32_t>(v));
  }

  out.pod(model.slab_bytes());
  out.pod(model.weight_bytes());
  out.pod(model.packed_weight_bytes());
}

MetaCounts read_meta(Reader& in, CompileOptions& opt, core::OptimizeStats& stats,
                     std::uint32_t& pack_layout, support::Isa& isa) {
  pack_layout = in.pod<std::uint32_t>();
  isa = ir::wire::read_enum(in, support::Isa::kNeon);
  opt.optimize = read_bool(in, "meta.optimize");
  opt.check_numerics = read_bool(in, "meta.check_numerics");
  opt.arena_canaries = read_bool(in, "meta.arena_canaries");
  const auto max_batch = in.pod<std::uint64_t>();
  TEMCO_CHECK_AS(max_batch >= 1 && max_batch <= kMaxArtifactBatch, InvalidGraphError)
      << "implausible max_batch " << max_batch;
  opt.max_batch = static_cast<std::size_t>(max_batch);
  opt.intra_op_threads = static_cast<std::size_t>(in.pod<std::uint64_t>());
  opt.max_arena_bytes = in.pod<std::int64_t>();
  TEMCO_CHECK_AS(opt.max_arena_bytes >= 0 && opt.max_arena_bytes <= kMaxPlanBytes,
                 InvalidGraphError)
      << "implausible arena budget " << opt.max_arena_bytes;

  core::TemcoOptions& t = opt.temco;
  t.enable_skip_opt = read_bool(in, "meta.enable_skip_opt");
  t.enable_transforms = read_bool(in, "meta.enable_transforms");
  t.enable_fusion = read_bool(in, "meta.enable_fusion");
  t.prefer_merged_lconv = read_bool(in, "meta.prefer_merged_lconv");
  t.distance_threshold = in.pod<std::int64_t>();
  t.compute_threshold_scale = in.pod<double>();
  t.memory_slack = in.pod<double>();
  t.max_restore_depth = in.pod<std::int32_t>();
  t.max_arena_bytes = in.pod<std::int64_t>();
  TEMCO_CHECK_AS(t.max_arena_bytes >= 0 && t.max_arena_bytes <= kMaxPlanBytes, InvalidGraphError)
      << "implausible pipeline arena budget " << t.max_arena_bytes;
  t.verify_passes = read_bool(in, "meta.verify_passes");
  t.numeric_oracle = read_bool(in, "meta.numeric_oracle");
  t.oracle_tolerance = in.pod<double>();
  t.oracle_seed = in.pod<std::uint64_t>();

  for (int* v : {&stats.skips_found, &stats.skips_optimized, &stats.skips_rejected_structure,
                 &stats.skips_rejected_compute, &stats.skips_rejected_memory,
                 &stats.restore_copies_inserted, &stats.concat_splits, &stats.lconv_merges,
                 &stats.add_merges, &stats.upsample_commutes, &stats.fused_kernels,
                 &stats.dce_removed}) {
    *v = in.pod<std::int32_t>();
  }

  MetaCounts counts;
  counts.slab_bytes = in.pod<std::int64_t>();
  counts.weight_bytes = in.pod<std::int64_t>();
  counts.packed_bytes = in.pod<std::int64_t>();
  for (const std::int64_t v : {counts.slab_bytes, counts.weight_bytes, counts.packed_bytes}) {
    TEMCO_CHECK_AS(v >= 0 && v <= kMaxPlanBytes, InvalidGraphError)
        << "implausible meta byte count " << v;
  }
  in.expect_exhausted("meta section");
  return counts;
}

// ---- plans section ----------------------------------------------------------

void write_plans(Writer& out, const CompiledModel& model) {
  out.pod(static_cast<std::uint32_t>(model.max_batch()));
  for (std::size_t k = 1; k <= model.max_batch(); ++k) {
    const runtime::ArenaPlan& plan = model.plan(k);
    out.pod(static_cast<std::uint32_t>(plan.blocks.size()));
    for (const runtime::ArenaBlock& block : plan.blocks) {
      out.pod(block.id);
      out.pod(block.offset);
      out.pod(block.bytes);
      out.pod(block.range.begin);
      out.pod(block.range.end);
    }
    out.pod(plan.arena_bytes);
    out.pod(plan.tensor_bytes);
    out.pod(plan.scratch_offset);
    out.pod(plan.scratch_slot_bytes);
    out.pod(static_cast<std::uint64_t>(plan.scratch_slots));
    out.pod(plan.canary_bytes);
  }
}

/// Reads and fully re-validates the plan for one batch variant.  Structural
/// trust comes from recomputation, not the file: block liveness must equal
/// compute_liveness(variant) (a hostile range claiming false disjointness
/// would otherwise smuggle overlapping blocks past the overlap check), and
/// validate_arena_plan then proves alignment, bounds, and non-overlap.
runtime::ArenaPlan read_plan(Reader& in, const ir::Graph& variant, bool expect_canaries) {
  runtime::ArenaPlan plan;
  const auto block_count = in.pod<std::uint32_t>();
  TEMCO_CHECK_AS(block_count == variant.size(), InvalidGraphError)
      << "plan covers " << block_count << " values, variant has " << variant.size();
  const std::vector<runtime::LiveRange> liveness = runtime::compute_liveness(variant);
  plan.blocks.resize(block_count);
  for (std::uint32_t i = 0; i < block_count; ++i) {
    runtime::ArenaBlock& block = plan.blocks[i];
    block.id = in.pod<ir::ValueId>();
    TEMCO_CHECK_AS(block.id == static_cast<ir::ValueId>(i), InvalidGraphError)
        << "plan block " << i << " carries id " << block.id << "; blocks must be value-indexed";
    block.offset = in.pod<std::int64_t>();
    block.bytes = in.pod<std::int64_t>();
    block.range.begin = in.pod<ir::ValueId>();
    block.range.end = in.pod<ir::ValueId>();
    TEMCO_CHECK_AS(block.offset >= 0 && block.offset <= kMaxPlanBytes && block.bytes >= 0 &&
                       block.bytes <= kMaxPlanBytes,
                   InvalidGraphError)
        << "plan block " << i << " has implausible extent [" << block.offset << ", +"
        << block.bytes << ")";
    const runtime::LiveRange& expected = liveness[i];
    TEMCO_CHECK_AS(block.range.begin == expected.begin && block.range.end == expected.end,
                   InvalidGraphError)
        << "plan block " << i << " stores live range [" << block.range.begin << ", "
        << block.range.end << "], recomputed liveness says [" << expected.begin << ", "
        << expected.end << "]";
  }
  plan.arena_bytes = in.pod<std::int64_t>();
  plan.tensor_bytes = in.pod<std::int64_t>();
  plan.scratch_offset = in.pod<std::int64_t>();
  plan.scratch_slot_bytes = in.pod<std::int64_t>();
  const auto scratch_slots = in.pod<std::uint64_t>();
  plan.canary_bytes = in.pod<std::int64_t>();
  for (const std::int64_t v : {plan.arena_bytes, plan.tensor_bytes, plan.scratch_offset,
                               plan.scratch_slot_bytes, plan.canary_bytes}) {
    TEMCO_CHECK_AS(v >= 0 && v <= kMaxPlanBytes, InvalidGraphError)
        << "implausible plan byte count " << v;
  }
  TEMCO_CHECK_AS(scratch_slots <= kMaxArtifactBatch * 64, InvalidGraphError)
      << "implausible scratch slot count " << scratch_slots;
  plan.scratch_slots = static_cast<std::size_t>(scratch_slots);

  // Scratch sufficiency is machine-dependent: the plan was sized for the
  // compiling process's pool, and fused kernels index scratch by worker id.
  // A wider pool here would index past the reserved slots, so reject rather
  // than corrupt (recompiling on this machine fixes it).
  std::int64_t max_scratch = 0;
  for (const ir::Node& node : variant.nodes()) {
    if (node.kind != ir::OpKind::kFusedConvActConv) continue;
    const Shape& x = variant.node(node.inputs[0]).out_shape;
    max_scratch = std::max(
        max_scratch, kernels::fused_scratch_bytes(node.weights[0].shape()[0], x[3],
                                                  node.attrs.fused_has_pool, node.out_shape[3]));
  }
  if (max_scratch > 0) {
    TEMCO_CHECK_AS(plan.scratch_slot_bytes >= align_up(max_scratch), InvalidGraphError)
        << "plan reserves " << plan.scratch_slot_bytes << " scratch bytes per slot, fused "
        << "kernels need " << align_up(max_scratch);
    TEMCO_CHECK_AS(plan.scratch_slots >= ThreadPool::global().concurrency(), InvalidGraphError)
        << "artifact plans reserve " << plan.scratch_slots << " scratch slots but this "
        << "process's pool has " << ThreadPool::global().concurrency()
        << " lanes; recompile the model on this machine";
  }
  TEMCO_CHECK_AS(!expect_canaries || plan.canary_bytes > 0, InvalidGraphError)
      << "model was compiled with arena_canaries but the stored plan has no guard bands";
  runtime::validate_arena_plan(variant, plan);
  return plan;
}

// ---- packed-weight sections -------------------------------------------------

struct PackedIndexEntry {
  std::uint64_t floats = 0;
  std::uint64_t offset = 0;  ///< byte offset inside the weight section
};

void write_packed(Writer& index_out, Writer& weights_out, const CompiledModel& model) {
  const runtime::PackedWeights& packed = model.prepack();
  const ir::Graph& graph = model.graph(1);
  index_out.pod(static_cast<std::uint32_t>(packed.size()));
  for (std::size_t i = 0; i < packed.size(); ++i) {
    const float* data = packed.blob(static_cast<ir::ValueId>(i));
    // Blob sizes come from the packer contract, not container bookkeeping,
    // so saving works identically for owned and borrowed (views) storage.
    const std::size_t floats =
        data == nullptr
            ? 0
            : static_cast<std::size_t>(runtime::PackedWeights::node_floats(
                  graph, graph.node(static_cast<ir::ValueId>(i))));
    PackedIndexEntry entry;
    entry.floats = floats;
    if (floats > 0) {
      weights_out.align_to(kSectionAlignment);
      entry.offset = weights_out.size();
      weights_out.raw(data, floats * sizeof(float));
    }
    index_out.pod(entry.floats);
    index_out.pod(entry.offset);
  }
}

/// Validates the packed index against what this binary's packers would
/// produce for `graph` and returns the per-node entries.  Every blob size is
/// recomputed (PackedWeights::node_floats), offsets must ascend without
/// overlap and stay 64-aligned, and the section must be consumed exactly.
std::vector<PackedIndexEntry> read_packed_index(Reader& in, const ir::Graph& graph,
                                                std::uint64_t weight_section_bytes,
                                                std::int64_t expected_packed_bytes) {
  const auto node_count = in.pod<std::uint32_t>();
  TEMCO_CHECK_AS(node_count == graph.size(), InvalidGraphError)
      << "packed index covers " << node_count << " nodes, graph has " << graph.size();
  std::vector<PackedIndexEntry> entries(node_count);
  std::uint64_t cursor = 0;
  std::int64_t total_bytes = 0;
  for (std::uint32_t i = 0; i < node_count; ++i) {
    PackedIndexEntry& entry = entries[i];
    entry.floats = in.pod<std::uint64_t>();
    entry.offset = in.pod<std::uint64_t>();
    const std::int64_t expected =
        runtime::PackedWeights::node_floats(graph, graph.node(static_cast<ir::ValueId>(i)));
    TEMCO_CHECK_AS(entry.floats == static_cast<std::uint64_t>(expected), InvalidGraphError)
        << "node " << i << " stores " << entry.floats << " packed floats, this runtime's "
        << "packer produces " << expected;
    if (entry.floats == 0) {
      TEMCO_CHECK_AS(entry.offset == 0, InvalidGraphError)
          << "node " << i << " has no packed blob but a nonzero offset";
      continue;
    }
    const std::uint64_t bytes = entry.floats * sizeof(float);  // bounded: floats was recomputed
    TEMCO_CHECK_AS(entry.offset % kSectionAlignment == 0, InvalidGraphError)
        << "node " << i << " packed blob at misaligned offset " << entry.offset;
    TEMCO_CHECK_AS(entry.offset >= cursor, InvalidGraphError)
        << "node " << i << " packed blob overlaps its predecessor";
    TEMCO_CHECK_AS(entry.offset <= weight_section_bytes &&
                       bytes <= weight_section_bytes - entry.offset,
                   InvalidGraphError)
        << "node " << i << " packed blob [" << entry.offset << ", +" << bytes
        << ") exceeds the weight section's " << weight_section_bytes << " bytes";
    cursor = entry.offset + bytes;
    total_bytes += static_cast<std::int64_t>(bytes);
  }
  in.expect_exhausted("packed index section");
  TEMCO_CHECK_AS(cursor == weight_section_bytes, InvalidGraphError)
      << "weight section holds " << weight_section_bytes << " bytes, the index accounts for "
      << cursor;
  TEMCO_CHECK_AS(total_bytes == expected_packed_bytes, InvalidGraphError)
      << "packed index totals " << total_bytes << " bytes, meta stamps "
      << expected_packed_bytes;
  return entries;
}

// ---- container --------------------------------------------------------------

struct ParsedSections {
  SectionEntry meta, graph, plans, index, weights;
};

/// Header + table validation: everything here runs before any section byte
/// is interpreted.  Offsets are validated against the real file size with
/// overflow-safe arithmetic, sections may not overlap the header, the table,
/// or each other, all five known sections must appear exactly once, and an
/// unknown section id is an error (see the version-bump rule in the header).
ParsedSections parse_container(Reader& in, std::size_t file_size) {
  char magic[sizeof(kArtifactMagic)];
  in.raw(magic, sizeof(magic));
  TEMCO_CHECK_AS(std::memcmp(magic, kArtifactMagic, sizeof(magic)) == 0, InvalidGraphError)
      << "not a TeMCO artifact file";
  const auto version = in.pod<std::uint32_t>();
  TEMCO_CHECK_AS(version == kArtifactFormatVersion, InvalidGraphError)
      << "artifact is format v" << version << ", this runtime supports only v"
      << kArtifactFormatVersion << "; recompile the model with this release";
  const auto section_count = in.pod<std::uint32_t>();
  TEMCO_CHECK_AS(section_count == 5, InvalidGraphError)
      << "artifact v" << kArtifactFormatVersion << " has exactly 5 sections, file declares "
      << section_count;
  const auto file_bytes = in.pod<std::uint64_t>();
  TEMCO_CHECK_AS(file_bytes == file_size, InvalidGraphError)
      << "header declares " << file_bytes << " file bytes, actual size is " << file_size;
  const auto table_checksum = in.pod<std::uint64_t>();
  for (int i = 0; i < 2; ++i) {
    TEMCO_CHECK_AS(in.pod<std::uint64_t>() == 0, InvalidGraphError)
        << "reserved header field is not zero";
  }

  const std::size_t table_bytes = static_cast<std::size_t>(section_count) * kTableEntryBytes;
  const unsigned char* table = in.view(table_bytes);
  TEMCO_CHECK_AS(fnv1a64(table, table_bytes) == table_checksum, InvalidGraphError)
      << "section table checksum mismatch (corrupt or tampered file)";

  Reader table_in(table, table_bytes);
  std::vector<SectionEntry> entries(section_count);
  for (SectionEntry& entry : entries) {
    entry.id = table_in.pod<std::uint32_t>();
    TEMCO_CHECK_AS(table_in.pod<std::uint32_t>() == 0, InvalidGraphError)
        << "reserved table field is not zero";
    entry.offset = table_in.pod<std::uint64_t>();
    entry.bytes = table_in.pod<std::uint64_t>();
    entry.checksum = table_in.pod<std::uint64_t>();
    TEMCO_CHECK_AS(entry.offset % kSectionAlignment == 0, InvalidGraphError)
        << "section " << entry.id << " at misaligned offset " << entry.offset;
    TEMCO_CHECK_AS(entry.offset >= kHeaderBytes + table_bytes, InvalidGraphError)
        << "section " << entry.id << " overlaps the header";
    TEMCO_CHECK_AS(entry.offset <= file_size && entry.bytes <= file_size - entry.offset,
                   InvalidGraphError)
        << "section " << entry.id << " extent [" << entry.offset << ", +" << entry.bytes
        << ") exceeds the " << file_size << "-byte file";
  }
  std::vector<SectionEntry> by_offset = entries;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const SectionEntry& a, const SectionEntry& b) { return a.offset < b.offset; });
  for (std::size_t i = 1; i < by_offset.size(); ++i) {
    TEMCO_CHECK_AS(
        by_offset[i].offset >= by_offset[i - 1].offset + by_offset[i - 1].bytes,
        InvalidGraphError)
        << "sections " << by_offset[i - 1].id << " and " << by_offset[i].id << " overlap";
  }

  ParsedSections sections;
  bool seen[6] = {};
  for (const SectionEntry& entry : entries) {
    TEMCO_CHECK_AS(entry.id >= 1 && entry.id <= 5, InvalidGraphError)
        << "unknown section id " << entry.id
        << " (new sections require an artifact format version bump)";
    TEMCO_CHECK_AS(!seen[entry.id], InvalidGraphError) << "duplicate section id " << entry.id;
    seen[entry.id] = true;
    switch (static_cast<ArtifactSection>(entry.id)) {
      case ArtifactSection::kMeta: sections.meta = entry; break;
      case ArtifactSection::kGraph: sections.graph = entry; break;
      case ArtifactSection::kPlans: sections.plans = entry; break;
      case ArtifactSection::kPackedIndex: sections.index = entry; break;
      case ArtifactSection::kPackedWeights: sections.weights = entry; break;
    }
  }
  TEMCO_CHECK_AS(sections.weights.offset % kWeightSectionAlignment == 0, InvalidGraphError)
      << "packed-weight section at offset " << sections.weights.offset << " is not "
      << kWeightSectionAlignment << "-byte aligned";
  return sections;
}

class SectionView {
 public:
  SectionView(const unsigned char* base, const SectionEntry& entry, const char* name)
      : data_(base + entry.offset), bytes_(static_cast<std::size_t>(entry.bytes)) {
    TEMCO_CHECK_AS(fnv1a64(data_, bytes_) == entry.checksum, InvalidGraphError)
        << name << " section checksum mismatch (corrupt or tampered file)";
  }

  Reader reader() const { return Reader(data_, bytes_); }
  const unsigned char* data() const { return data_; }
  std::size_t bytes() const { return bytes_; }

 private:
  const unsigned char* data_;
  std::size_t bytes_;
};

}  // namespace

// ---- codec (friend of CompiledModel) ----------------------------------------

class ArtifactCodec {
 public:
  static std::string save(const CompiledModel& model) {
    // Payloads first; the header and table are a function of their sizes.
    Writer meta, graph, plans, index, weights;
    write_meta(meta, model);
    ir::save_graph(model.graph(1), graph);
    write_plans(plans, model);
    write_packed(index, weights, model);

    struct Pending {
      ArtifactSection id;
      const Writer* payload;
      std::size_t alignment;
      std::uint64_t offset = 0;
    };
    Pending order[] = {
        {ArtifactSection::kMeta, &meta, kSectionAlignment},
        {ArtifactSection::kGraph, &graph, kSectionAlignment},
        {ArtifactSection::kPlans, &plans, kSectionAlignment},
        {ArtifactSection::kPackedIndex, &index, kSectionAlignment},
        {ArtifactSection::kPackedWeights, &weights, kWeightSectionAlignment},
    };

    const std::size_t table_bytes = std::size(order) * kTableEntryBytes;
    std::uint64_t cursor = kHeaderBytes + table_bytes;
    for (Pending& p : order) {
      cursor = (cursor + p.alignment - 1) / p.alignment * p.alignment;
      p.offset = cursor;
      cursor += p.payload->size();
    }
    const std::uint64_t file_bytes = cursor;

    Writer table;
    for (const Pending& p : order) {
      table.pod(static_cast<std::uint32_t>(p.id));
      table.pod(std::uint32_t{0});
      table.pod(p.offset);
      table.pod(static_cast<std::uint64_t>(p.payload->size()));
      table.pod(fnv1a64(p.payload->bytes().data(), p.payload->size()));
    }

    Writer out;
    out.raw(kArtifactMagic, sizeof(kArtifactMagic));
    out.pod(kArtifactFormatVersion);
    out.pod(static_cast<std::uint32_t>(std::size(order)));
    out.pod(file_bytes);
    out.pod(fnv1a64(table.bytes().data(), table.size()));
    out.pod(std::uint64_t{0});
    out.pod(std::uint64_t{0});
    out.raw(table.bytes().data(), table.size());
    for (const Pending& p : order) {
      out.align_to(p.alignment);
      TEMCO_CHECK(out.size() == p.offset) << "artifact writer layout drift";
      out.raw(p.payload->bytes().data(), p.payload->size());
    }
    TEMCO_CHECK(out.size() == file_bytes) << "artifact writer layout drift";
    return out.take();
  }

  /// `owner` non-null: borrow packed weights zero-copy from the (4096-
  /// aligned, kept-alive) mapping.  Null: copy them out of the caller's
  /// unaligned, transient buffer.
  static std::shared_ptr<const CompiledModel> load(const unsigned char* data, std::size_t size,
                                                   std::shared_ptr<const void> owner) {
    Reader top(data, size);
    const ParsedSections sections = parse_container(top, size);
    const SectionView meta_view(data, sections.meta, "meta");
    const SectionView graph_view(data, sections.graph, "graph");
    const SectionView plans_view(data, sections.plans, "plans");
    const SectionView index_view(data, sections.index, "packed index");
    const SectionView weights_view(data, sections.weights, "packed weights");

    auto model = std::shared_ptr<CompiledModel>(new CompiledModel());

    Reader meta_in = meta_view.reader();
    const MetaCounts counts = read_meta(meta_in, model->options_, model->stats_,
                                        model->pack_layout_version_, model->kernel_isa_);
    // Stamp gate before any expensive parsing: blobs in an incompatible
    // panel layout must never reach a kernel.
    kernels::gemm::check_pack_layout(model->pack_layout_version_);

    Reader graph_in = graph_view.reader();
    ir::Graph base = ir::load_graph(graph_in);
    graph_in.expect_exhausted("graph section");
    for (const ir::Node& node : base.nodes()) {
      TEMCO_CHECK_AS(node.kind != ir::OpKind::kInput || node.out_shape[0] == 1,
                     InvalidGraphError)
          << "artifact graph input " << node.name << " is not a batch-1 template";
    }

    // Restamp the batch variants exactly as compile() does; the artifact
    // stores one graph, not max_batch near-copies.
    model->variants_.reserve(model->options_.max_batch);
    for (std::size_t k = 1; k <= model->options_.max_batch; ++k) {
      ir::Graph variant =
          k == 1 ? std::move(base) : ir::rebatched(model->variants_.front(), static_cast<std::int64_t>(k));
      variant.verify();
      model->variants_.push_back(std::move(variant));
    }

    Reader plans_in = plans_view.reader();
    const auto plan_count = plans_in.pod<std::uint32_t>();
    TEMCO_CHECK_AS(plan_count == model->options_.max_batch, InvalidGraphError)
        << "artifact stores " << plan_count << " plans for max_batch "
        << model->options_.max_batch;
    model->plans_.reserve(plan_count);
    for (std::size_t k = 1; k <= plan_count; ++k) {
      runtime::ArenaPlan plan =
          read_plan(plans_in, model->variants_[k - 1], model->options_.arena_canaries);
      model->slab_bytes_ = std::max(model->slab_bytes_, plan.arena_bytes);
      model->plans_.push_back(std::move(plan));
    }
    plans_in.expect_exhausted("plans section");
    TEMCO_CHECK_AS(model->slab_bytes_ == counts.slab_bytes, InvalidGraphError)
        << "plans need a " << model->slab_bytes_ << "-byte slab, meta stamps "
        << counts.slab_bytes;

    const ir::Graph& b1 = model->variants_.front();
    Reader index_in = index_view.reader();
    const std::vector<PackedIndexEntry> entries =
        read_packed_index(index_in, b1, weights_view.bytes(), counts.packed_bytes);

    runtime::PackedWeights& packed = model->prepack_;
    packed.bytes = counts.packed_bytes;
    if (owner != nullptr) {
      // Zero-copy: the section is 4096-aligned in the file and the mapping
      // base is 4096-aligned, so every 64-aligned blob offset stays aligned.
      packed.views.resize(entries.size(), nullptr);
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].floats == 0) continue;
        packed.views[i] =
            reinterpret_cast<const float*>(weights_view.data() + entries[i].offset);
      }
      model->artifact_owner_ = std::move(owner);
    } else {
      packed.blobs.resize(entries.size());
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].floats == 0) continue;
        auto& blob = packed.blobs[i];
        blob.resize(static_cast<std::size_t>(entries[i].floats));
        std::memcpy(blob.data(), weights_view.data() + entries[i].offset,
                    blob.size() * sizeof(float));
      }
    }

    model->weight_bytes_ = b1.total_weight_bytes();
    TEMCO_CHECK_AS(model->weight_bytes_ == counts.weight_bytes, InvalidGraphError)
        << "graph carries " << model->weight_bytes_ << " weight bytes, meta stamps "
        << counts.weight_bytes;

    for (const ir::Node& node : b1.nodes()) {
      if (node.kind == ir::OpKind::kInput) model->input_shapes_.push_back(node.out_shape);
    }
    for (const ir::ValueId out : b1.outputs()) {
      model->output_shapes_.push_back(b1.node(out).out_shape);
    }
    model->revalidate_kernel_dispatch();
    return model;
  }
};

std::string save_artifact_bytes(const CompiledModel& model) {
  return ArtifactCodec::save(model);
}

namespace {

/// Same temco::Error guarantee as ir::load_graph: malformed input must never
/// surface foreign exception types, whatever the standard library throws
/// mid-parse.
template <typename Fn>
std::shared_ptr<const CompiledModel> convert_foreign(Fn&& fn) {
  try {
    return fn();
  } catch (const Error&) {
    throw;
  } catch (const std::bad_alloc&) {
    throw ResourceExhaustedError("out of memory loading artifact");
  } catch (const std::exception& e) {
    throw InvalidGraphError(std::string("malformed artifact: ") + e.what());
  }
}

}  // namespace

std::shared_ptr<const CompiledModel> load_artifact_bytes(const void* data, std::size_t size) {
  return convert_foreign([&] {
    return ArtifactCodec::load(static_cast<const unsigned char*>(data), size, nullptr);
  });
}

std::shared_ptr<const CompiledModel> load_artifact(
    std::shared_ptr<const support::MappedFile> file) {
  TEMCO_CHECK_AS(file != nullptr, InvalidGraphError) << "load_artifact: null file";
  return convert_foreign([&] {
    return ArtifactCodec::load(file->data(), file->size(), file);
  });
}

void CompiledModel::save(const std::string& path) const {
  const std::string bytes = save_artifact_bytes(*this);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TEMCO_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  TEMCO_CHECK(out.good()) << "write to " << path << " failed";
}

std::shared_ptr<const CompiledModel> CompiledModel::load(const std::string& path) {
  return load_artifact(support::MappedFile::open(path));
}

}  // namespace temco::serve
