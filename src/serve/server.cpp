#include "serve/server.hpp"

namespace temco::serve {

Server::Server(std::shared_ptr<const CompiledModel> model, ServerOptions options)
    : model_(std::move(model)), options_(options) {
  TEMCO_CHECK_AS(options_.workers >= 1, InvalidGraphError) << "server needs at least one worker";
  TEMCO_CHECK_AS(options_.queue_capacity >= 1, InvalidGraphError)
      << "queue capacity must be at least 1";
  if (options_.sessions == 0) options_.sessions = options_.workers;
  if (options_.max_batch == 0) options_.max_batch = model_->max_batch();
  TEMCO_CHECK_AS(options_.max_batch <= model_->max_batch(), ResourceExhaustedError)
      << "server max_batch " << options_.max_batch << " exceeds the model's compiled ceiling "
      << model_->max_batch();

  pool_ = std::make_unique<SessionPool>(model_, options_.sessions);
  worker_pool_ = std::make_unique<ThreadPool>(options_.workers);

  // The dispatcher is the worker pool's participating caller: it blocks in
  // run() for the server's whole life, contributing one worker lane itself.
  dispatcher_ = std::thread([this] {
    try {
      worker_pool_->run(options_.workers, [this](std::size_t) { worker_loop(); });
    } catch (...) {
      // A worker's queue logic itself failed (batch execution errors are
      // contained in execute_batch and never reach here).  Stop admission
      // and fail whatever is still queued so no future is abandoned.
      std::deque<Request> orphaned;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_ = true;
        orphaned.swap(queue_);
      }
      queue_cv_.notify_all();
      for (Request& request : orphaned) {
        counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
        request.promise.set_exception(std::make_exception_ptr(
            CancelledError("server worker failed before this request ran")));
      }
    }
  });
}

Server::~Server() { shutdown(false); }

std::future<std::vector<Tensor>> Server::submit(std::vector<Tensor> inputs) {
  model_->check_compatible(inputs);
  Request request;
  request.inputs = std::move(inputs);
  std::future<std::vector<Tensor>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TEMCO_CHECK_AS(!stopping_, CancelledError) << "server is shutting down";
    if (queue_.size() >= options_.queue_capacity) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      TEMCO_CHECK_AS(false, ResourceExhaustedError)
          << "admission queue is at capacity (" << options_.queue_capacity
          << " requests); back off and retry";
    }
    queue_.push_back(std::move(request));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left to run

      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalesce: drain whatever is already queued, then wait out the
      // batching window for stragglers — but never once a full batch is in
      // hand, and never during shutdown (no stragglers will be admitted).
      const auto deadline = std::chrono::steady_clock::now() + options_.batch_timeout;
      while (batch.size() < options_.max_batch) {
        if (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          continue;
        }
        if (stopping_) break;
        if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      // Claimed while still holding the queue lock: once in_flight counts a
      // request, it is guaranteed to resolve — shutdown cancels only what is
      // still in queue_.
      counters_.in_flight.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    execute_batch(batch);
    counters_.in_flight.fetch_sub(batch.size(), std::memory_order_relaxed);
  }
}

void Server::execute_batch(std::vector<Request>& batch) {
  try {
    SessionPool::Lease lease = pool_->acquire();
    std::vector<const std::vector<Tensor>*> requests;
    requests.reserve(batch.size());
    for (const Request& request : batch) requests.push_back(&request.inputs);
    std::vector<std::vector<Tensor>> responses = lease->run_batch(requests);
    lease.release();  // free the session before the (cheap) promise fanout
    // Counters first: a client that observes its future ready must also
    // observe the completion counted.
    counters_.completed.fetch_add(batch.size(), std::memory_order_relaxed);
    counters_.batches.fetch_add(1, std::memory_order_relaxed);
    counters_.batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
    std::uint64_t seen = counters_.max_batch_seen.load(std::memory_order_relaxed);
    while (seen < batch.size() &&
           !counters_.max_batch_seen.compare_exchange_weak(seen, batch.size())) {
    }
    for (std::size_t r = 0; r < batch.size(); ++r) {
      batch[r].promise.set_value(std::move(responses[r]));
    }
  } catch (...) {
    // Fault isolation: exactly this batch's requests observe the error; the
    // worker, its session, and every other batch stay serviceable.
    const std::exception_ptr error = std::current_exception();
    counters_.failed.fetch_add(batch.size(), std::memory_order_relaxed);
    for (Request& request : batch) request.promise.set_exception(error);
  }
}

void Server::shutdown(bool drain) {
  // Serialize whole shutdowns: the second caller waits for the first to
  // finish joining, then sees joined_ and returns.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::deque<Request> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (joined_) return;
    stopping_ = true;
    if (!drain) orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  for (Request& request : orphaned) {
    counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(
        CancelledError("request cancelled: server shut down before it ran")));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  worker_pool_->shutdown();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    joined_ = true;
  }
}

ServerStats Server::stats() const {
  ServerStats snapshot;
  snapshot.accepted = counters_.accepted.load(std::memory_order_relaxed);
  snapshot.rejected = counters_.rejected.load(std::memory_order_relaxed);
  snapshot.completed = counters_.completed.load(std::memory_order_relaxed);
  snapshot.failed = counters_.failed.load(std::memory_order_relaxed);
  snapshot.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  snapshot.batches = counters_.batches.load(std::memory_order_relaxed);
  snapshot.batched_requests = counters_.batched_requests.load(std::memory_order_relaxed);
  snapshot.max_batch_seen = counters_.max_batch_seen.load(std::memory_order_relaxed);
  snapshot.in_flight = counters_.in_flight.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace temco::serve
