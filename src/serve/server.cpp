#include "serve/server.hpp"

#include <algorithm>

#include "serve/fault.hpp"
#include "support/log.hpp"

namespace temco::serve {

Server::Server(std::shared_ptr<const CompiledModel> model, ServerOptions options)
    : model_(std::move(model)), options_(options) {
  TEMCO_CHECK_AS(options_.workers >= 1, InvalidGraphError) << "server needs at least one worker";
  TEMCO_CHECK_AS(options_.queue_capacity >= 1, InvalidGraphError)
      << "queue capacity must be at least 1";
  if (options_.sessions == 0) options_.sessions = options_.workers;
  if (options_.max_batch == 0) options_.max_batch = model_->max_batch();
  TEMCO_CHECK_AS(options_.max_batch <= model_->max_batch(), ResourceExhaustedError)
      << "server max_batch " << options_.max_batch << " exceeds the model's compiled ceiling "
      << model_->max_batch();
  TEMCO_CHECK_AS(options_.batch_timeout.count() >= 0, InvalidGraphError)
      << "batch_timeout must be non-negative";
  TEMCO_CHECK_AS(options_.retry_backoff.count() >= 0, InvalidGraphError)
      << "retry_backoff must be non-negative";
  TEMCO_CHECK_AS(options_.hang_budget.count() >= 0, InvalidGraphError)
      << "hang_budget must be non-negative";
  TEMCO_CHECK_AS(options_.breaker_threshold == 0 || options_.breaker_recovery >= 1,
                 InvalidGraphError)
      << "breaker_recovery must be at least 1 when the breaker is enabled";
  if (options_.watchdog_interval.count() <= 0) options_.watchdog_interval = std::chrono::milliseconds(1);

  pool_ = std::make_unique<SessionPool>(model_, options_.sessions);
  worker_pool_ = std::make_unique<ThreadPool>(options_.workers);

  if (options_.hang_budget.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  // The dispatcher is the worker pool's participating caller: it blocks in
  // run() for the server's whole life, contributing one worker lane itself.
  dispatcher_ = std::thread([this] {
    try {
      worker_pool_->run(options_.workers, [this](std::size_t) { worker_loop(); });
    } catch (...) {
      // A worker's queue logic itself failed (batch execution errors are
      // contained in execute_batch and never reach here).  Stop admission
      // and fail whatever is still queued so no future is abandoned.
      std::deque<RequestPtr> orphaned;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stopping_ = true;
        orphaned.swap(queue_);
      }
      queue_cv_.notify_all();
      const auto error = std::make_exception_ptr(
          CancelledError("server worker failed before this request ran"));
      for (const RequestPtr& request : orphaned) {
        resolve_error(*request, error, counters_.cancelled);
      }
    }
  });
}

Server::~Server() { shutdown(false); }

std::future<std::vector<Tensor>> Server::submit(std::vector<Tensor> inputs) {
  return submit(std::move(inputs), SubmitOptions{});
}

std::future<std::vector<Tensor>> Server::submit(std::vector<Tensor> inputs,
                                                SubmitOptions options) {
  model_->check_compatible(inputs);
  auto deadline = options.deadline;
  const auto now = std::chrono::steady_clock::now();
  if (options.timeout.count() > 0) deadline = std::min(deadline, now + options.timeout);
  if (deadline != std::chrono::steady_clock::time_point::max() && now >= deadline) {
    // Admission check: a request that is already out of time must not
    // consume queue capacity or a session — the SLO answer is known now.
    counters_.deadline_rejected.fetch_add(1, std::memory_order_relaxed);
    TEMCO_CHECK_AS(false, DeadlineExceededError)
        << "request deadline already expired at submission";
  }
  auto request = std::make_shared<Request>();
  request->inputs = std::move(inputs);
  request->deadline = deadline;
  std::future<std::vector<Tensor>> future = request->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    TEMCO_CHECK_AS(!stopping_, CancelledError) << "server is shutting down";
    if (queue_.size() >= options_.queue_capacity) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      TEMCO_CHECK_AS(false, ResourceExhaustedError)
          << "admission queue is at capacity (" << options_.queue_capacity
          << " requests); back off and retry";
    }
    queue_.push_back(std::move(request));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void Server::worker_loop() {
  for (;;) {
    std::vector<RequestPtr> batch;
    bool degraded = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and nothing left to run

      // Degraded mode (circuit breaker open): singleton batches only, so a
      // fault fails one request and the hardened executor can run.
      degraded = degraded_.load(std::memory_order_relaxed);
      const std::size_t cap = degraded ? 1 : options_.max_batch;

      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalesce: drain whatever is already queued, then wait out the
      // batching window for stragglers — but never once a full batch is in
      // hand, and never during shutdown (no stragglers will be admitted).
      const auto window = std::chrono::steady_clock::now() + options_.batch_timeout;
      while (batch.size() < cap) {
        if (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
          continue;
        }
        if (stopping_) break;
        if (queue_cv_.wait_until(lock, window) == std::cv_status::timeout) break;
      }
      // Claimed while still holding the queue lock: once in_flight counts a
      // request, it is guaranteed to resolve — shutdown cancels only what is
      // still in queue_.
      counters_.in_flight.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    const std::size_t claimed = batch.size();
    execute_batch(batch, degraded);
    counters_.in_flight.fetch_sub(claimed, std::memory_order_relaxed);
  }
}

bool Server::resolve_value(Request& request, std::vector<Tensor> value) {
  if (!request.claim()) return false;
  // Counters first: a client that observes its future ready must also
  // observe the completion counted.
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  request.promise.set_value(std::move(value));
  return true;
}

bool Server::resolve_error(Request& request, const std::exception_ptr& error,
                           std::atomic<std::uint64_t>& counter) {
  if (!request.claim()) return false;
  counter.fetch_add(1, std::memory_order_relaxed);
  request.promise.set_exception(error);
  return true;
}

void Server::fail_batch(std::vector<RequestPtr>& batch, const std::exception_ptr& error) {
  for (const RequestPtr& request : batch) resolve_error(*request, error, counters_.failed);
  batch.clear();
}

void Server::sweep_expired(std::vector<RequestPtr>& batch) {
  const auto now = std::chrono::steady_clock::now();
  std::exception_ptr error;
  std::vector<RequestPtr> keep;
  keep.reserve(batch.size());
  for (RequestPtr& request : batch) {
    if (request->expired(now)) {
      if (error == nullptr) {
        error = std::make_exception_ptr(
            DeadlineExceededError("request deadline expired before execution"));
      }
      resolve_error(*request, error, counters_.deadline_expired);
    } else {
      keep.push_back(std::move(request));
    }
  }
  batch.swap(keep);
}

void Server::backoff_sleep(std::size_t attempt) {
  if (options_.retry_backoff.count() <= 0) return;
  double jitter;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    jitter = std::uniform_real_distribution<double>(0.5, 1.5)(rng_);
  }
  const std::size_t doublings = std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 10);
  const double scaled =
      static_cast<double>(options_.retry_backoff.count()) * static_cast<double>(1ull << doublings);
  const auto delay = std::chrono::microseconds(static_cast<std::int64_t>(scaled * jitter));
  // Interruptible: a shutdown notification ends the nap early so drains
  // never wait out a retry schedule.
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait_for(lock, delay, [this] { return stopping_; });
}

void Server::breaker_failure() {
  if (options_.breaker_threshold == 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  ++consecutive_failures_;
  probe_successes_ = 0;
  if (!degraded_.load(std::memory_order_relaxed) &&
      consecutive_failures_ >= options_.breaker_threshold) {
    degraded_.store(true, std::memory_order_relaxed);
    counters_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
    TEMCO_WARN() << "circuit breaker tripped after " << consecutive_failures_
                 << " consecutive batch failures; degrading to singleton batches";
  }
}

void Server::breaker_success() {
  if (options_.breaker_threshold == 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  consecutive_failures_ = 0;
  if (!degraded_.load(std::memory_order_relaxed)) return;
  if (++probe_successes_ >= options_.breaker_recovery) {
    degraded_.store(false, std::memory_order_relaxed);
    probe_successes_ = 0;
    counters_.breaker_restores.fetch_add(1, std::memory_order_relaxed);
    TEMCO_INFO() << "circuit breaker closed after " << options_.breaker_recovery
                 << " clean probes; normal batching restored";
  }
}

Server::WatchHandle Server::watch_begin(const std::vector<RequestPtr>& batch,
                                        support::CancelToken* token) {
  if (!watchdog_.joinable()) return std::nullopt;
  std::lock_guard<std::mutex> lock(watch_mutex_);
  watched_.push_back(Inflight{std::chrono::steady_clock::now(), token, batch, false});
  return std::prev(watched_.end());
}

bool Server::watch_end(WatchHandle& handle) {
  if (!handle.has_value()) return false;
  std::lock_guard<std::mutex> lock(watch_mutex_);
  const bool flagged = (*handle)->flagged;
  watched_.erase(*handle);
  handle.reset();
  return flagged;
}

void Server::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watch_mutex_);
  for (;;) {
    watch_cv_.wait_for(lock, options_.watchdog_interval, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (Inflight& entry : watched_) {
      if (entry.flagged || now - entry.started < options_.hang_budget) continue;
      // Fail fast: clients get their answer now; the stuck run is cancelled
      // via the session token and unwinds at its next poll point.  The
      // worker discovers the flag at watch_end and discards any late result.
      entry.flagged = true;
      counters_.hung_batches.fetch_add(1, std::memory_order_relaxed);
      entry.token->cancel();
      const auto error = std::make_exception_ptr(DeadlineExceededError(
          "batch exceeded the server hang budget; failed fast by the watchdog"));
      for (const RequestPtr& request : entry.requests) {
        resolve_error(*request, error, counters_.hung_requests);
      }
      TEMCO_WARN() << "watchdog flagged a batch of " << entry.requests.size()
                   << " requests over the hang budget";
    }
  }
}

void Server::execute_batch(std::vector<RequestPtr>& batch, bool degraded) {
  if (degraded) counters_.degraded_batches.fetch_add(1, std::memory_order_relaxed);
  std::size_t attempt = 0;
  for (;;) {
    // Deadline check at batch formation (and again before every retry —
    // backoff may have outlived someone's SLO).
    sweep_expired(batch);
    if (batch.empty()) return;

    SessionPool::Lease lease;
    try {
      lease = pool_->acquire();
    } catch (...) {
      // The pool is defunct (all sessions quarantined, none replaceable).
      breaker_failure();
      fail_batch(batch, std::current_exception());
      return;
    }

    // Arm the session token with the tightest deadline in the batch; the
    // executor polls it between nodes/waves.
    support::CancelToken& token = lease->cancel_token();
    token.reset();
    auto deadline = std::chrono::steady_clock::time_point::max();
    for (const RequestPtr& request : batch) deadline = std::min(deadline, request->deadline);
    if (deadline != std::chrono::steady_clock::time_point::max()) token.set_deadline(deadline);
    WatchHandle watch = watch_begin(batch, &token);

    try {
      std::vector<const std::vector<Tensor>*> requests;
      requests.reserve(batch.size());
      for (const RequestPtr& request : batch) requests.push_back(&request->inputs);
      std::vector<std::vector<Tensor>> responses =
          lease->run_batch(requests, degraded ? RunMode::kDegraded : RunMode::kNormal);
      const bool hung = watch_end(watch);
      token.reset();
      lease.release();  // free the session before the (cheap) promise fanout
      if (hung) {
        // Finished after the watchdog already failed these futures: clients
        // were told the batch hung, so the late result is discarded.
        batch.clear();
        breaker_failure();
        return;
      }
      counters_.batches.fetch_add(1, std::memory_order_relaxed);
      counters_.batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
      std::uint64_t seen = counters_.max_batch_seen.load(std::memory_order_relaxed);
      while (seen < batch.size() &&
             !counters_.max_batch_seen.compare_exchange_weak(seen, batch.size())) {
      }
      // Breaker signal before the promise fanout, same rule as the
      // counters: a client that observes its future ready must also
      // observe the breaker state this batch produced.
      breaker_success();
      for (std::size_t r = 0; r < batch.size(); ++r) {
        resolve_value(*batch[r], std::move(responses[r]));
      }
      batch.clear();
      return;
    } catch (...) {
      const bool hung = watch_end(watch);
      token.reset();
      const std::exception_ptr error = std::current_exception();
      const FaultClass fault = classify_fault(error);

      if (fault == FaultClass::kCorrupting) {
        // Terminal for the session too: its memory is suspect.  The pool
        // scrubs, audits, and replaces it; this lease is consumed.
        counters_.quarantined.fetch_add(1, std::memory_order_relaxed);
        pool_->quarantine(std::move(lease));
      } else {
        lease.release();
      }

      if (hung) {
        // The watchdog already resolved these futures as hung; its cancel is
        // usually what unwound the run.  Sweep stragglers defensively.
        breaker_failure();
        const auto hang_error = std::make_exception_ptr(DeadlineExceededError(
            "batch exceeded the server hang budget; failed fast by the watchdog"));
        for (const RequestPtr& request : batch) {
          resolve_error(*request, hang_error, counters_.hung_requests);
        }
        batch.clear();
        return;
      }

      switch (fault) {
        case FaultClass::kDeadline: {
          // The batch outlived its SLO.  That is the client's answer, not a
          // server-health signal: no breaker failure, no retry.
          for (const RequestPtr& request : batch) {
            resolve_error(*request, error, counters_.deadline_expired);
          }
          batch.clear();
          return;
        }
        case FaultClass::kCancelled: {
          for (const RequestPtr& request : batch) {
            resolve_error(*request, error, counters_.cancelled);
          }
          batch.clear();
          return;
        }
        case FaultClass::kTransient: {
          bool stopping;
          {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            stopping = stopping_;
          }
          if (attempt < options_.max_retries && !stopping) {
            ++attempt;
            counters_.retries.fetch_add(1, std::memory_order_relaxed);
            backoff_sleep(attempt);
            continue;  // re-sweep deadlines, re-acquire a session, re-run
          }
          break;  // retry budget exhausted (or draining): terminal
        }
        case FaultClass::kCorrupting:
        case FaultClass::kTerminal:
          break;
      }

      // Fault isolation: exactly this batch's requests observe the error;
      // the worker and every other batch stay serviceable.  Breaker signal
      // first, same visibility rule as the success path.
      breaker_failure();
      fail_batch(batch, error);
      return;
    }
  }
}

void Server::shutdown(bool drain) {
  // Serialize whole shutdowns: the second caller waits for the first to
  // finish joining, then sees joined_ and returns.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  std::deque<RequestPtr> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (joined_) return;
    stopping_ = true;
    if (!drain) orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  const auto error = std::make_exception_ptr(
      CancelledError("request cancelled: server shut down before it ran"));
  // The claim makes this idempotent against every racer: a request the
  // batcher grabbed between our swap and here resolves exactly once.
  for (const RequestPtr& request : orphaned) {
    resolve_error(*request, error, counters_.cancelled);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  worker_pool_->shutdown();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mutex_);
      watchdog_stop_ = true;
    }
    watch_cv_.notify_all();
    watchdog_.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    joined_ = true;
  }
}

ServerStats Server::stats() const {
  ServerStats snapshot;
  snapshot.accepted = counters_.accepted.load(std::memory_order_relaxed);
  snapshot.rejected = counters_.rejected.load(std::memory_order_relaxed);
  snapshot.completed = counters_.completed.load(std::memory_order_relaxed);
  snapshot.failed = counters_.failed.load(std::memory_order_relaxed);
  snapshot.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  snapshot.deadline_rejected = counters_.deadline_rejected.load(std::memory_order_relaxed);
  snapshot.deadline_expired = counters_.deadline_expired.load(std::memory_order_relaxed);
  snapshot.hung_requests = counters_.hung_requests.load(std::memory_order_relaxed);
  snapshot.hung_batches = counters_.hung_batches.load(std::memory_order_relaxed);
  snapshot.retries = counters_.retries.load(std::memory_order_relaxed);
  snapshot.quarantined = counters_.quarantined.load(std::memory_order_relaxed);
  snapshot.breaker_trips = counters_.breaker_trips.load(std::memory_order_relaxed);
  snapshot.breaker_restores = counters_.breaker_restores.load(std::memory_order_relaxed);
  snapshot.degraded_batches = counters_.degraded_batches.load(std::memory_order_relaxed);
  snapshot.batches = counters_.batches.load(std::memory_order_relaxed);
  snapshot.batched_requests = counters_.batched_requests.load(std::memory_order_relaxed);
  snapshot.max_batch_seen = counters_.max_batch_seen.load(std::memory_order_relaxed);
  snapshot.in_flight = counters_.in_flight.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    snapshot.queue_depth = queue_.size();
  }
  snapshot.resident_arena_bytes = pool_->resident_bytes();
  snapshot.degraded = degraded_.load(std::memory_order_relaxed);
  return snapshot;
}

// ---- ArtifactRegistry -------------------------------------------------------

ArtifactRegistry::ArtifactRegistry(ServerOptions defaults) : defaults_(defaults) {}

ArtifactRegistry::~ArtifactRegistry() {
  // Collect under the lock, drain outside it: shutdown() joins workers whose
  // submit retries may need the registry lock.
  std::vector<std::shared_ptr<Server>> servers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, entry] : entries_) servers.push_back(std::move(entry.server));
    entries_.clear();
  }
  for (const auto& server : servers) server->shutdown(true);
}

std::shared_ptr<Server> ArtifactRegistry::replace(const std::string& name,
                                                  std::shared_ptr<const CompiledModel> model,
                                                  std::optional<ServerOptions> options,
                                                  bool must_exist) {
  // Server construction (sessions, slabs, workers) happens before the lock is
  // taken, so a heavyweight deploy never stalls routing for other names.
  // The options are resolved first (a swap inherits the incumbent's), which
  // needs one short lock; the window between resolve and swap only matters
  // for concurrent swaps of the same name, where last-in wins anyway.
  ServerOptions resolved = options.value_or(defaults_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    TEMCO_CHECK_AS(!must_exist || it != entries_.end(), InvalidGraphError)
        << "swap target '" << name << "' is not currently serving; install it first";
    if (!options.has_value() && it != entries_.end()) resolved = it->second.options;
  }
  auto fresh = std::make_shared<Server>(std::move(model), resolved);

  std::shared_ptr<Server> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[name];
    old = std::move(entry.server);
    entry.server = fresh;
    entry.options = resolved;
  }
  // Drain the displaced server after the swap is visible: requests it
  // already accepted complete on the old model; anything arriving now lands
  // on the new one.
  if (old != nullptr) old->shutdown(true);
  return fresh;
}

std::shared_ptr<Server> ArtifactRegistry::install(const std::string& name,
                                                  std::shared_ptr<const CompiledModel> model) {
  return replace(name, std::move(model), std::nullopt, /*must_exist=*/false);
}

std::shared_ptr<Server> ArtifactRegistry::install(const std::string& name,
                                                  std::shared_ptr<const CompiledModel> model,
                                                  ServerOptions options) {
  return replace(name, std::move(model), options, /*must_exist=*/false);
}

std::shared_ptr<Server> ArtifactRegistry::install_file(const std::string& name,
                                                       const std::string& path) {
  return replace(name, CompiledModel::load(path), std::nullopt, /*must_exist=*/false);
}

std::shared_ptr<Server> ArtifactRegistry::swap(const std::string& name,
                                               std::shared_ptr<const CompiledModel> model) {
  return replace(name, std::move(model), std::nullopt, /*must_exist=*/true);
}

std::shared_ptr<Server> ArtifactRegistry::swap_file(const std::string& name,
                                                    const std::string& path) {
  return replace(name, CompiledModel::load(path), std::nullopt, /*must_exist=*/true);
}

std::future<std::vector<Tensor>> ArtifactRegistry::submit(const std::string& name,
                                                          std::vector<Tensor> inputs,
                                                          SubmitOptions options) {
  for (;;) {
    std::shared_ptr<Server> target = server(name);
    try {
      // Tensors are handle-copied; keep `inputs` intact in case of a retry.
      return target->submit(inputs, options);
    } catch (const CancelledError&) {
      // The target refused admission because it is shutting down.  If it was
      // hot-swapped out from under us, route to its replacement; if the name
      // is genuinely being retired (same server still mapped, or gone), the
      // cancellation — or server()'s unknown-name error — is the answer.
      std::shared_ptr<Server> current;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(name);
        current = it != entries_.end() ? it->second.server : nullptr;
      }
      if (current == target || current == nullptr) throw;
    }
  }
}

std::shared_ptr<Server> ArtifactRegistry::server(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  TEMCO_CHECK_AS(it != entries_.end(), InvalidGraphError)
      << "no model installed under '" << name << "'";
  return it->second.server;
}

std::vector<std::string> ArtifactRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) result.push_back(name);
  return result;
}

void ArtifactRegistry::remove(const std::string& name) {
  std::shared_ptr<Server> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return;
    old = std::move(it->second.server);
    entries_.erase(it);
  }
  old->shutdown(true);
}

}  // namespace temco::serve
