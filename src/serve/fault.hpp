// Shared fault classification for the serving layer.
//
// One taxonomy, two consumers: Server::execute_batch and
// FleetServer::execute_batch make identical retry/quarantine/deadline
// decisions from the same classifier, so a fault class added here changes
// both execution paths at once — the single-model and fleet servers can
// never drift apart on what "transient" means.  See DESIGN.md "Fault
// tolerance" for the full class matrix.
#pragma once

#include <exception>

namespace temco::serve {

/// What a batch failure means for the retry/quarantine machinery.
enum class FaultClass {
  kTransient,   ///< spurious and non-corrupting: safe to re-execute
  kCorrupting,  ///< the session's memory is suspect: quarantine it
  kDeadline,    ///< the batch ran out of SLO: typed resolution, no retry
  kCancelled,   ///< the run was abandoned (watchdog/shutdown)
  kTerminal,    ///< anything else: fail the batch, keep the session
};

/// Maps a caught batch-execution error to its fault class.
FaultClass classify_fault(const std::exception_ptr& error);

}  // namespace temco::serve
