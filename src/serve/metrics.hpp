// First-class serving observability: lock-cheap per-model counters and
// fixed-bucket latency histograms, snapshot-exportable as JSON.
//
// Design rules (what "first-class" buys and what it costs):
//  - The hot path pays relaxed atomic increments and nothing else: no locks,
//    no allocation, no clock reads beyond what the caller already took.  A
//    histogram record is two adds and a relaxed max update.
//  - Histograms use FIXED log-scale buckets (4 per octave from 1 microsecond,
//    so neighboring buckets differ by 2^0.25 ~ 19%), which makes p50/p99
//    estimates mergeable, allocation-free, and stable across snapshots —
//    exactly what a fleet bench driver or an ops scraper needs.  Quantiles
//    are bucket-resolution estimates, not exact order statistics; the
//    per-bucket geometric midpoint bounds the error to one sub-octave.
//  - snapshot() is a torn-but-monotonic read: counters are sampled
//    individually without a global lock, so cross-counter invariants (e.g.
//    accepted == completed + failed + ...) hold only at quiescence.  That is
//    the standard metrics contract — a snapshot, not a transaction.
//
// The fleet server (serve/fleet.hpp) owns one ModelMetrics per installed
// model and stitches snapshots plus its adaptive-batcher state into the
// to_json export consumed by bench/serving_fleet.cpp and ops tooling.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace temco::serve::metrics {

/// Fixed-bucket log-scale latency histogram.  Bucket i covers
/// [2^(i/4), 2^((i+1)/4)) microseconds; 96 buckets span 1 us to ~16.8 s,
/// with everything above clamped into the last bucket (the exact maximum is
/// tracked separately, so clamping loses tail shape, never the tail itself).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 96;
  static constexpr double kSubBucketsPerOctave = 4.0;

  /// Records one observation; safe from any thread, lock-free.
  void record_seconds(double seconds);

  /// Lower bound of bucket i in microseconds (2^(i/4)).
  static double bucket_lower_us(std::size_t i);

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t max_us = 0;

    /// Bucket-resolution quantile estimate in milliseconds; q in [0, 1].
    /// Returns 0 when the histogram is empty.
    double quantile_ms(double q) const;
    double mean_ms() const;
    double max_ms() const { return static_cast<double>(max_us) / 1e3; }
  };

  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Per-model serving counters, gauges, and latency histograms.  All members
/// are atomics: recording is lock-free, reading is a snapshot.  Every
/// accepted request lands in exactly one of completed / failed / cancelled /
/// deadline_expired once it resolves; the rejected_* counters partition the
/// refused submits by cause.
struct ModelMetrics {
  // ---- request lifecycle counters (monotonic) -------------------------------
  std::atomic<std::uint64_t> submitted{0};            ///< submit() calls, admitted or not
  std::atomic<std::uint64_t> accepted{0};             ///< requests admitted to the queue
  std::atomic<std::uint64_t> rejected_queue_full{0};  ///< refused: queue at capacity
  std::atomic<std::uint64_t> rejected_slo{0};         ///< refused: predicted wait blows SLO/deadline
  std::atomic<std::uint64_t> rejected_deadline{0};    ///< refused: deadline already expired
  std::atomic<std::uint64_t> completed{0};            ///< futures fulfilled with outputs
  std::atomic<std::uint64_t> failed{0};               ///< futures failed with an execution error
  std::atomic<std::uint64_t> cancelled{0};            ///< futures failed with CancelledError
  std::atomic<std::uint64_t> deadline_expired{0};     ///< accepted requests that ran out of time
  /// Values that arrived past their request's deadline and were converted to
  /// DeadlineExceededError by the fleet's strict-SLO rule before the promise
  /// fanout — an accepted request never yields a usable answer late.  Each
  /// conversion means admission control admitted something it could not
  /// serve in time; the bench asserts this stays 0 in the closed-loop leg.
  std::atomic<std::uint64_t> value_past_deadline{0};

  // ---- fault path (fed by the existing retry/quarantine/breaker machinery) --
  std::atomic<std::uint64_t> retries{0};           ///< batch re-executions after transient faults
  std::atomic<std::uint64_t> quarantined{0};       ///< sessions retired after corrupting faults
  std::atomic<std::uint64_t> degraded_batches{0};  ///< batches executed in breaker-degraded mode
  std::atomic<std::uint64_t> breaker_trips{0};     ///< normal -> degraded transitions
  std::atomic<std::uint64_t> breaker_restores{0};  ///< degraded -> normal transitions

  // ---- batching -------------------------------------------------------------
  std::atomic<std::uint64_t> batches{0};           ///< micro-batches executed
  std::atomic<std::uint64_t> batched_requests{0};  ///< requests summed over those batches
  std::atomic<std::uint64_t> max_batch_seen{0};    ///< largest coalesced batch so far

  // ---- gauges ---------------------------------------------------------------
  std::atomic<std::int64_t> queue_depth{0};           ///< requests currently queued
  std::atomic<std::int64_t> in_flight{0};             ///< claimed by a worker, unresolved
  std::atomic<std::int64_t> arena_resident_bytes{0};  ///< session-pool slab residency

  // ---- latency histograms ---------------------------------------------------
  LatencyHistogram latency;     ///< submit -> resolution (end to end)
  LatencyHistogram queue_wait;  ///< submit -> claimed by a worker
  LatencyHistogram exec;        ///< per-batch run_batch wall time

  /// Relaxed running-max update for max_batch_seen.
  void record_batch(std::uint64_t size, double exec_seconds);
};

/// One model's metrics, frozen for export.  Plain values only — safe to copy
/// around, compare, and serialize after the model itself is gone.
struct ModelSnapshot {
  std::string name;

  std::uint64_t submitted = 0, accepted = 0, rejected_queue_full = 0, rejected_slo = 0,
                rejected_deadline = 0, completed = 0, failed = 0, cancelled = 0,
                deadline_expired = 0, value_past_deadline = 0;
  std::uint64_t retries = 0, quarantined = 0, degraded_batches = 0, breaker_trips = 0,
                breaker_restores = 0;
  std::uint64_t batches = 0, batched_requests = 0, max_batch_seen = 0;
  std::int64_t queue_depth = 0, in_flight = 0, arena_resident_bytes = 0;

  LatencyHistogram::Snapshot latency;
  LatencyHistogram::Snapshot queue_wait;
  LatencyHistogram::Snapshot exec;

  // ---- derived / stitched in by the owner -----------------------------------
  double uptime_seconds = 0.0;
  double requests_per_second = 0.0;  ///< completed / uptime
  double batch_occupancy = 0.0;      ///< batched_requests / batches

  // Adaptive-batcher state (fleet only; zero elsewhere).
  std::uint64_t batch_cap = 0;
  std::int64_t batch_timeout_us = 0;
  double arrival_rate_hat = 0.0;
  double slo_target_p99_ms = 0.0;
  double weight = 0.0;
  bool degraded = false;
};

/// Fills the counter/gauge/histogram part of a snapshot from live metrics.
/// The caller stitches in name, uptime, and any adaptive state it owns.
ModelSnapshot snapshot(const ModelMetrics& metrics);

/// Renders snapshots as one JSON document:
///   {"models": [{...}, ...]}
/// Keys are stable; histograms export count/mean/p50/p99/max (the full
/// bucket vectors stay in-process — quantiles are what dashboards consume).
std::string to_json(const std::vector<ModelSnapshot>& models);

/// Renders one snapshot as a JSON object (no surrounding document).
void append_json(std::string& out, const ModelSnapshot& snapshot);

}  // namespace temco::serve::metrics
