#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace temco::serve::metrics {

namespace {

/// Bucket index for a latency of `us` microseconds: floor(4 * log2(us)),
/// clamped to the table.  Sub-microsecond observations land in bucket 0.
std::size_t bucket_index(double us) {
  if (us <= 1.0) return 0;
  const double index = LatencyHistogram::kSubBucketsPerOctave * std::log2(us);
  if (index >= static_cast<double>(LatencyHistogram::kBuckets - 1)) {
    return LatencyHistogram::kBuckets - 1;
  }
  return static_cast<std::size_t>(index);
}

void append_histogram_json(std::string& out, const char* key,
                           const LatencyHistogram::Snapshot& h) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"%s\": {\"count\": %llu, \"mean_ms\": %.4f, \"p50_ms\": %.4f, "
                "\"p99_ms\": %.4f, \"max_ms\": %.4f}",
                key, static_cast<unsigned long long>(h.count), h.mean_ms(), h.quantile_ms(0.50),
                h.quantile_ms(0.99), h.max_ms());
  out += buffer;
}

void append_counter(std::string& out, const char* key, std::uint64_t value, bool comma = true) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), comma ? ", " : "");
  out += buffer;
}

}  // namespace

void LatencyHistogram::record_seconds(double seconds) {
  const double us = seconds * 1e6;
  const std::uint64_t us_int = us > 0.0 ? static_cast<std::uint64_t>(us + 0.5) : 0;
  counts_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us_int, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (seen < us_int &&
         !max_us_.compare_exchange_weak(seen, us_int, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::bucket_lower_us(std::size_t i) {
  return std::exp2(static_cast<double>(i) / kSubBucketsPerOctave);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot result;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    result.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  result.count = count_.load(std::memory_order_relaxed);
  result.sum_us = sum_us_.load(std::memory_order_relaxed);
  result.max_us = max_us_.load(std::memory_order_relaxed);
  return result;
}

double LatencyHistogram::Snapshot::quantile_ms(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based, ceil), walked over the buckets.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      // Geometric midpoint of the bucket: the estimate's error is bounded by
      // the sub-octave width.  The last bucket is open-ended; cap by max.
      const double lower = bucket_lower_us(i);
      const double upper = i + 1 < kBuckets ? bucket_lower_us(i + 1)
                                            : std::max(lower, static_cast<double>(max_us));
      return std::sqrt(lower * std::max(upper, lower)) / 1e3;
    }
  }
  return static_cast<double>(max_us) / 1e3;  // unreachable: counts sum to count
}

double LatencyHistogram::Snapshot::mean_ms() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum_us) / static_cast<double>(count) / 1e3;
}

void ModelMetrics::record_batch(std::uint64_t size, double exec_seconds) {
  batches.fetch_add(1, std::memory_order_relaxed);
  batched_requests.fetch_add(size, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_seen.load(std::memory_order_relaxed);
  while (seen < size &&
         !max_batch_seen.compare_exchange_weak(seen, size, std::memory_order_relaxed)) {
  }
  exec.record_seconds(exec_seconds);
}

ModelSnapshot snapshot(const ModelMetrics& metrics) {
  ModelSnapshot s;
  const auto load = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  s.submitted = load(metrics.submitted);
  s.accepted = load(metrics.accepted);
  s.rejected_queue_full = load(metrics.rejected_queue_full);
  s.rejected_slo = load(metrics.rejected_slo);
  s.rejected_deadline = load(metrics.rejected_deadline);
  s.completed = load(metrics.completed);
  s.failed = load(metrics.failed);
  s.cancelled = load(metrics.cancelled);
  s.deadline_expired = load(metrics.deadline_expired);
  s.value_past_deadline = load(metrics.value_past_deadline);
  s.retries = load(metrics.retries);
  s.quarantined = load(metrics.quarantined);
  s.degraded_batches = load(metrics.degraded_batches);
  s.breaker_trips = load(metrics.breaker_trips);
  s.breaker_restores = load(metrics.breaker_restores);
  s.batches = load(metrics.batches);
  s.batched_requests = load(metrics.batched_requests);
  s.max_batch_seen = load(metrics.max_batch_seen);
  s.queue_depth = metrics.queue_depth.load(std::memory_order_relaxed);
  s.in_flight = metrics.in_flight.load(std::memory_order_relaxed);
  s.arena_resident_bytes = metrics.arena_resident_bytes.load(std::memory_order_relaxed);
  s.latency = metrics.latency.snapshot();
  s.queue_wait = metrics.queue_wait.snapshot();
  s.exec = metrics.exec.snapshot();
  s.batch_occupancy =
      s.batches > 0 ? static_cast<double>(s.batched_requests) / static_cast<double>(s.batches)
                    : 0.0;
  return s;
}

void append_json(std::string& out, const ModelSnapshot& s) {
  char buffer[256];
  out += "{\"model\": \"";
  out += s.name;  // model names come from code/CLI, not hostile input
  out += "\", ";
  append_counter(out, "submitted", s.submitted);
  append_counter(out, "accepted", s.accepted);
  append_counter(out, "rejected_queue_full", s.rejected_queue_full);
  append_counter(out, "rejected_slo", s.rejected_slo);
  append_counter(out, "rejected_deadline", s.rejected_deadline);
  append_counter(out, "completed", s.completed);
  append_counter(out, "failed", s.failed);
  append_counter(out, "cancelled", s.cancelled);
  append_counter(out, "deadline_expired", s.deadline_expired);
  append_counter(out, "value_past_deadline", s.value_past_deadline);
  append_counter(out, "retries", s.retries);
  append_counter(out, "quarantined", s.quarantined);
  append_counter(out, "degraded_batches", s.degraded_batches);
  append_counter(out, "breaker_trips", s.breaker_trips);
  append_counter(out, "breaker_restores", s.breaker_restores);
  append_counter(out, "batches", s.batches);
  append_counter(out, "batched_requests", s.batched_requests);
  append_counter(out, "max_batch_seen", s.max_batch_seen);
  std::snprintf(buffer, sizeof(buffer),
                "\"queue_depth\": %lld, \"in_flight\": %lld, \"arena_resident_bytes\": %lld, ",
                static_cast<long long>(s.queue_depth), static_cast<long long>(s.in_flight),
                static_cast<long long>(s.arena_resident_bytes));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "\"uptime_seconds\": %.3f, \"requests_per_second\": %.2f, "
                "\"batch_occupancy\": %.3f, ",
                s.uptime_seconds, s.requests_per_second, s.batch_occupancy);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "\"batch_cap\": %llu, \"batch_timeout_us\": %lld, \"arrival_rate_hat\": %.2f, "
                "\"slo_target_p99_ms\": %.3f, \"weight\": %.3f, \"degraded\": %s, ",
                static_cast<unsigned long long>(s.batch_cap),
                static_cast<long long>(s.batch_timeout_us), s.arrival_rate_hat,
                s.slo_target_p99_ms, s.weight, s.degraded ? "true" : "false");
  out += buffer;
  append_histogram_json(out, "latency", s.latency);
  out += ", ";
  append_histogram_json(out, "queue_wait", s.queue_wait);
  out += ", ";
  append_histogram_json(out, "exec", s.exec);
  out += "}";
}

std::string to_json(const std::vector<ModelSnapshot>& models) {
  std::string out = "{\"models\": [";
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (i > 0) out += ", ";
    append_json(out, models[i]);
  }
  out += "]}";
  return out;
}

}  // namespace temco::serve::metrics
