#include "serve/session.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

#include "support/align.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"

namespace temco::serve {

namespace {

// Fault-injection sites on the serving execution path (support/failpoint.hpp).
// exec_transient models a spurious, retry-safe fault (a flaky accelerator
// step, a transient allocator hiccup); wedge_batch models a hung batch — it
// parks the worker until the session's cancel token stops it, which is
// exactly the situation the serving watchdog exists to resolve.
failpoints::Site fp_exec_transient{"serve.exec_transient"};
failpoints::Site fp_wedge_batch{"serve.wedge_batch"};

}  // namespace

Session::Session(std::shared_ptr<const CompiledModel> model)
    : model_(std::move(model)), slab_(nullptr, [](float* p) { std::free(p); }) {
  // Fail fast if this runtime cannot read the artifact's packed weights
  // (layout version); merely different ISA dispatch is logged, not fatal.
  model_->revalidate_kernel_dispatch();
  const std::int64_t bytes = model_->slab_bytes();
  float* raw = static_cast<float*>(std::aligned_alloc(static_cast<std::size_t>(kTensorAlignment),
                                                      static_cast<std::size_t>(bytes)));
  TEMCO_CHECK_AS(raw != nullptr, ResourceExhaustedError)
      << "session arena allocation of " << bytes << " bytes failed";
  // The executor never initializes a bound slab; fill it once here the same
  // way an owned slab would be (runtime/executor.cpp bind_arena).
  std::memset(raw, model_->options().arena_canaries ? runtime::kArenaPoisonByte : 0,
              static_cast<std::size_t>(bytes));
  slab_.reset(raw);

  const std::size_t max_batch = model_->max_batch();
  executors_.reserve(max_batch);
  for (std::size_t k = 1; k <= max_batch; ++k) {
    runtime::ExecutorOptions exec_options;
    exec_options.use_arena = true;
    exec_options.check_numerics = model_->options().check_numerics;
    exec_options.arena_canaries = model_->options().arena_canaries;
    exec_options.parallelism = 1;
    exec_options.intra_op_threads = model_->options().intra_op_threads;
    exec_options.cancel = &token_;
    runtime::ExecutorBinding binding;
    binding.prepack = &model_->prepack();
    binding.plan = &model_->plan(k);
    binding.slab = raw;
    binding.slab_bytes = bytes;
    executors_.push_back(
        std::make_unique<runtime::Executor>(model_->graph(k), exec_options, binding));
  }

  // The circuit breaker's isolation variant: batch 1, kernels pinned serial,
  // numeric checks forced on regardless of compile options.  Same slab and
  // plan as the normal batch-1 executor, so it costs no extra memory.
  {
    runtime::ExecutorOptions exec_options;
    exec_options.use_arena = true;
    exec_options.check_numerics = true;
    exec_options.arena_canaries = model_->options().arena_canaries;
    exec_options.parallelism = 1;
    exec_options.intra_op_threads = 1;
    exec_options.cancel = &token_;
    runtime::ExecutorBinding binding;
    binding.prepack = &model_->prepack();
    binding.plan = &model_->plan(1);
    binding.slab = raw;
    binding.slab_bytes = bytes;
    degraded_executor_ =
        std::make_unique<runtime::Executor>(model_->graph(1), exec_options, binding);
  }

  // Max-batch staging storage, with one prebuilt batch-k view per variant.
  // The batch dimension is outermost, so "the first k rows" is a prefix of
  // the same contiguous buffer — a view costs a handle, not a copy.
  views_in_.resize(max_batch);
  views_out_.resize(max_batch);
  for (std::size_t i = 0; i < model_->num_inputs(); ++i) {
    const Shape full = model_->input_shape(i).with_dim(0, static_cast<std::int64_t>(max_batch));
    Buffer storage = allocate_buffer(full.numel());
    staging_in_.emplace_back(full, storage);
    for (std::size_t k = 1; k <= max_batch; ++k) {
      views_in_[k - 1].emplace_back(
          model_->input_shape(i).with_dim(0, static_cast<std::int64_t>(k)), storage);
    }
  }
  for (std::size_t o = 0; o < model_->num_outputs(); ++o) {
    const Shape full = model_->output_shape(o).with_dim(0, static_cast<std::int64_t>(max_batch));
    Buffer storage = allocate_buffer(full.numel());
    staging_out_.emplace_back(full, storage);
    for (std::size_t k = 1; k <= max_batch; ++k) {
      views_out_[k - 1].emplace_back(
          model_->output_shape(o).with_dim(0, static_cast<std::int64_t>(k)), storage);
    }
  }
}

std::vector<std::vector<Tensor>> Session::run_batch(
    const std::vector<const std::vector<Tensor>*>& requests, RunMode mode) {
  const std::size_t k = requests.size();
  TEMCO_CHECK_AS(k >= 1, InvalidGraphError) << "run_batch needs at least one request";
  TEMCO_CHECK_AS(k <= model_->max_batch(), ResourceExhaustedError)
      << "batch of " << k << " requests exceeds the compiled max_batch "
      << model_->max_batch();
  TEMCO_CHECK_AS(mode == RunMode::kNormal || k == 1, InvalidGraphError)
      << "degraded mode runs singleton batches only, got " << k;
  for (const std::vector<Tensor>* request : requests) {
    TEMCO_CHECK_AS(request != nullptr, InvalidGraphError) << "null request in batch";
    model_->check_compatible(*request);
  }

  if (fp_exec_transient.fire()) {
    throw TransientFaultError(
        "serve.exec_transient failpoint: injected transient execution fault");
  }
  if (fp_wedge_batch.fire()) {
    // Simulated hang: the worker is stuck "in the kernel" until someone with
    // the session's cancel token (the watchdog, a deadline) stops it.  Yield
    // rather than sleep so the wedge reacts within a scheduler quantum.
    while (!token_.stop_requested()) std::this_thread::yield();
    token_.raise_if_stopped();
  }

  // Gather: request r's input i becomes row r of staging input i.
  for (std::size_t i = 0; i < staging_in_.size(); ++i) {
    const std::int64_t row = model_->input_shape(i).numel();
    float* base = staging_in_[i].data();
    for (std::size_t r = 0; r < k; ++r) {
      std::memcpy(base + static_cast<std::int64_t>(r) * row, (*requests[r])[i].data(),
                  static_cast<std::size_t>(row) * sizeof(float));
    }
  }

  runtime::Executor& executor =
      mode == RunMode::kDegraded ? *degraded_executor_ : *executors_[k - 1];
  executor.run_into(views_in_[k - 1], views_out_[k - 1]);

  // Split: row r of each staging output becomes request r's response tensor.
  // Responses are fresh heap tensors — they outlive the session checkout.
  std::vector<std::vector<Tensor>> responses(k);
  for (std::size_t r = 0; r < k; ++r) {
    responses[r].reserve(staging_out_.size());
    for (std::size_t o = 0; o < staging_out_.size(); ++o) {
      const std::int64_t row = model_->output_shape(o).numel();
      Tensor out = Tensor::zeros(model_->output_shape(o));
      std::memcpy(out.data(), staging_out_[o].data() + static_cast<std::int64_t>(r) * row,
                  static_cast<std::size_t>(row) * sizeof(float));
      responses[r].push_back(std::move(out));
    }
  }
  return responses;
}

std::vector<Tensor> Session::run(const std::vector<Tensor>& inputs) {
  return run_batch({&inputs}).front();
}

std::int64_t Session::quarantine_scrub() {
  unsigned char* bytes = reinterpret_cast<unsigned char*>(slab_.get());
  std::int64_t corrupt = 0;
  // Audit every variant's guard bands before scrubbing.  Plans overlap in
  // the slab (each run rewrites it wholesale), so a band of one variant may
  // legitimately hold another variant's payload bytes — the count is a
  // blast-radius *diagnostic*, upper-bounding what a rogue write could have
  // touched, not an exact tally.
  for (std::size_t k = 1; k <= model_->max_batch(); ++k) {
    const runtime::ArenaPlan& plan = model_->plan(k);
    if (plan.canary_bytes == 0) continue;
    for (const runtime::ArenaBlock& block : plan.blocks) {
      if (block.bytes < plan.canary_bytes) continue;
      const unsigned char* band = bytes + block.offset + (block.bytes - plan.canary_bytes);
      for (std::int64_t b = 0; b < plan.canary_bytes; ++b) {
        if (band[b] != runtime::kArenaPoisonByte) ++corrupt;
      }
    }
  }
  // Poison-scrub: whatever the fault left behind, the next reader of these
  // bytes (there should be none — the session is about to be destroyed)
  // sees NaN patterns, never plausible stale activations.
  std::memset(bytes, runtime::kArenaPoisonByte, static_cast<std::size_t>(model_->slab_bytes()));
  return corrupt;
}

SessionPool::SessionPool(std::shared_ptr<const CompiledModel> model, std::size_t size)
    : model_(std::move(model)) {
  TEMCO_CHECK_AS(size >= 1, InvalidGraphError) << "session pool needs at least one session";
  sessions_.reserve(size);
  free_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    sessions_.push_back(std::make_unique<Session>(model_));
    free_.push_back(sessions_.back().get());
  }
}

SessionPool::Lease SessionPool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  free_cv_.wait(lock, [this] { return !free_.empty() || sessions_.empty(); });
  TEMCO_CHECK_AS(!sessions_.empty(), ResourceExhaustedError)
      << "session pool is defunct: every session was quarantined and no "
         "replacement could be constructed";
  Session* session = free_.back();
  free_.pop_back();
  return Lease(this, session);
}

std::optional<SessionPool::Lease> SessionPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.empty()) return std::nullopt;
  Session* session = free_.back();
  free_.pop_back();
  return Lease(this, session);
}

std::size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::size_t SessionPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

std::int64_t SessionPool::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& session : sessions_) total += session->arena_bytes();
  return total;
}

SessionPool::Stats SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void SessionPool::quarantine(Lease&& lease) {
  TEMCO_CHECK(lease.pool_ == this && lease.session_ != nullptr)
      << "quarantine needs a live lease from this pool";
  Session* victim = lease.session_;
  // Detach: the lease must never put_back a session we are retiring.
  lease.pool_ = nullptr;
  lease.session_ = nullptr;

  const std::int64_t corrupt = victim->quarantine_scrub();
  if (corrupt > 0) {
    TEMCO_WARN() << "quarantined session had " << corrupt
                 << " corrupted guard-band bytes (blast-radius upper bound)";
  }

  // Build the replacement before touching pool structures: construction is
  // the expensive part (slab + executors) and the remaining sessions keep
  // serving while it happens.
  std::unique_ptr<Session> replacement;
  try {
    replacement = std::make_unique<Session>(model_);
  } catch (const std::exception& e) {
    TEMCO_WARN() << "quarantine replacement construction failed (" << e.what()
                 << "); pool shrinks by one session";
  }

  bool defunct = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.quarantined += 1;
    counters_.corrupt_band_bytes += corrupt;
    auto it = sessions_.begin();
    while (it != sessions_.end() && it->get() != victim) ++it;
    TEMCO_CHECK(it != sessions_.end()) << "quarantined session not owned by this pool";
    if (replacement != nullptr) {
      counters_.replaced += 1;
      free_.push_back(replacement.get());
      *it = std::move(replacement);  // destroys the scrubbed victim
    } else {
      counters_.replace_failures += 1;
      sessions_.erase(it);
      defunct = sessions_.empty();
    }
  }
  // Wake one waiter for the new free session — or everyone, so nobody blocks
  // forever on a pool that can never refill.
  if (defunct) {
    free_cv_.notify_all();
  } else {
    free_cv_.notify_one();
  }
}

void SessionPool::put_back(Session* session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(session);
  }
  free_cv_.notify_one();
}

void SessionPool::Lease::release() {
  if (session_ != nullptr && pool_ != nullptr) pool_->put_back(session_);
  pool_ = nullptr;
  session_ = nullptr;
}

}  // namespace temco::serve
