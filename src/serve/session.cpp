#include "serve/session.hpp"

#include <cstdlib>
#include <cstring>

#include "support/align.hpp"

namespace temco::serve {

Session::Session(std::shared_ptr<const CompiledModel> model)
    : model_(std::move(model)), slab_(nullptr, [](float* p) { std::free(p); }) {
  // Fail fast if this runtime cannot read the artifact's packed weights
  // (layout version); merely different ISA dispatch is logged, not fatal.
  model_->revalidate_kernel_dispatch();
  const std::int64_t bytes = model_->slab_bytes();
  float* raw = static_cast<float*>(std::aligned_alloc(static_cast<std::size_t>(kTensorAlignment),
                                                      static_cast<std::size_t>(bytes)));
  TEMCO_CHECK_AS(raw != nullptr, ResourceExhaustedError)
      << "session arena allocation of " << bytes << " bytes failed";
  // The executor never initializes a bound slab; fill it once here the same
  // way an owned slab would be (runtime/executor.cpp bind_arena).
  std::memset(raw, model_->options().arena_canaries ? runtime::kArenaPoisonByte : 0,
              static_cast<std::size_t>(bytes));
  slab_.reset(raw);

  const std::size_t max_batch = model_->max_batch();
  executors_.reserve(max_batch);
  for (std::size_t k = 1; k <= max_batch; ++k) {
    runtime::ExecutorOptions exec_options;
    exec_options.use_arena = true;
    exec_options.check_numerics = model_->options().check_numerics;
    exec_options.arena_canaries = model_->options().arena_canaries;
    exec_options.parallelism = 1;
    exec_options.intra_op_threads = model_->options().intra_op_threads;
    runtime::ExecutorBinding binding;
    binding.prepack = &model_->prepack();
    binding.plan = &model_->plan(k);
    binding.slab = raw;
    binding.slab_bytes = bytes;
    executors_.push_back(
        std::make_unique<runtime::Executor>(model_->graph(k), exec_options, binding));
  }

  // Max-batch staging storage, with one prebuilt batch-k view per variant.
  // The batch dimension is outermost, so "the first k rows" is a prefix of
  // the same contiguous buffer — a view costs a handle, not a copy.
  views_in_.resize(max_batch);
  views_out_.resize(max_batch);
  for (std::size_t i = 0; i < model_->num_inputs(); ++i) {
    const Shape full = model_->input_shape(i).with_dim(0, static_cast<std::int64_t>(max_batch));
    Buffer storage = allocate_buffer(full.numel());
    staging_in_.emplace_back(full, storage);
    for (std::size_t k = 1; k <= max_batch; ++k) {
      views_in_[k - 1].emplace_back(
          model_->input_shape(i).with_dim(0, static_cast<std::int64_t>(k)), storage);
    }
  }
  for (std::size_t o = 0; o < model_->num_outputs(); ++o) {
    const Shape full = model_->output_shape(o).with_dim(0, static_cast<std::int64_t>(max_batch));
    Buffer storage = allocate_buffer(full.numel());
    staging_out_.emplace_back(full, storage);
    for (std::size_t k = 1; k <= max_batch; ++k) {
      views_out_[k - 1].emplace_back(
          model_->output_shape(o).with_dim(0, static_cast<std::int64_t>(k)), storage);
    }
  }
}

std::vector<std::vector<Tensor>> Session::run_batch(
    const std::vector<const std::vector<Tensor>*>& requests) {
  const std::size_t k = requests.size();
  TEMCO_CHECK_AS(k >= 1, InvalidGraphError) << "run_batch needs at least one request";
  TEMCO_CHECK_AS(k <= model_->max_batch(), ResourceExhaustedError)
      << "batch of " << k << " requests exceeds the compiled max_batch "
      << model_->max_batch();
  for (const std::vector<Tensor>* request : requests) {
    TEMCO_CHECK_AS(request != nullptr, InvalidGraphError) << "null request in batch";
    model_->check_compatible(*request);
  }

  // Gather: request r's input i becomes row r of staging input i.
  for (std::size_t i = 0; i < staging_in_.size(); ++i) {
    const std::int64_t row = model_->input_shape(i).numel();
    float* base = staging_in_[i].data();
    for (std::size_t r = 0; r < k; ++r) {
      std::memcpy(base + static_cast<std::int64_t>(r) * row, (*requests[r])[i].data(),
                  static_cast<std::size_t>(row) * sizeof(float));
    }
  }

  executors_[k - 1]->run_into(views_in_[k - 1], views_out_[k - 1]);

  // Split: row r of each staging output becomes request r's response tensor.
  // Responses are fresh heap tensors — they outlive the session checkout.
  std::vector<std::vector<Tensor>> responses(k);
  for (std::size_t r = 0; r < k; ++r) {
    responses[r].reserve(staging_out_.size());
    for (std::size_t o = 0; o < staging_out_.size(); ++o) {
      const std::int64_t row = model_->output_shape(o).numel();
      Tensor out = Tensor::zeros(model_->output_shape(o));
      std::memcpy(out.data(), staging_out_[o].data() + static_cast<std::int64_t>(r) * row,
                  static_cast<std::size_t>(row) * sizeof(float));
      responses[r].push_back(std::move(out));
    }
  }
  return responses;
}

std::vector<Tensor> Session::run(const std::vector<Tensor>& inputs) {
  return run_batch({&inputs}).front();
}

SessionPool::SessionPool(std::shared_ptr<const CompiledModel> model, std::size_t size) {
  TEMCO_CHECK_AS(size >= 1, InvalidGraphError) << "session pool needs at least one session";
  sessions_.reserve(size);
  free_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    sessions_.push_back(std::make_unique<Session>(model));
    free_.push_back(sessions_.back().get());
  }
}

SessionPool::Lease SessionPool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  free_cv_.wait(lock, [this] { return !free_.empty(); });
  Session* session = free_.back();
  free_.pop_back();
  return Lease(this, session);
}

std::optional<SessionPool::Lease> SessionPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.empty()) return std::nullopt;
  Session* session = free_.back();
  free_.pop_back();
  return Lease(this, session);
}

std::size_t SessionPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

std::int64_t SessionPool::resident_bytes() const {
  std::int64_t total = 0;
  for (const auto& session : sessions_) total += session->arena_bytes();
  return total;
}

void SessionPool::put_back(Session* session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(session);
  }
  free_cv_.notify_one();
}

void SessionPool::Lease::release() {
  if (session_ != nullptr && pool_ != nullptr) pool_->put_back(session_);
  pool_ = nullptr;
  session_ = nullptr;
}

}  // namespace temco::serve
