// On-disk serving artifacts: CompiledModel frozen to a versioned program.
//
// An artifact file is everything a server needs to start serving a model
// without re-running the compiler: the post-pipeline batch-1 schedule (every
// batch variant is a deterministic restamp of it), every validated arena
// plan, the shared packed-weight blob, and the compatibility stamps that tell
// a future runtime whether it may trust those bytes.  Loading is designed to
// be dominated by page faults, not compute: the packed-weight section is
// page-aligned so MappedFile can hand out zero-copy views, and N processes
// mapping the same artifact share one physical copy of the weights.
//
// File layout (all integers little-endian; enforced at compile time):
//
//   header (48 bytes)
//     char[8]  magic            "TMCOART\0"
//     u32      format_version   kArtifactFormatVersion
//     u32      section_count
//     u64      file_bytes       total file size, checked against reality
//     u64      table_checksum   FNV-1a-64 over the section table bytes
//     u64[2]   reserved         zero
//   section table (section_count × 32-byte entries)
//     u32 id, u32 reserved(0), u64 offset, u64 bytes, u64 checksum
//   sections, each at a 64-byte-aligned offset, non-overlapping:
//     1 kMeta           stamps (format/pack-layout/ISA), compile options,
//                       pipeline stats, and the byte counts the loader
//                       recomputes and cross-checks
//     2 kGraph          the optimized batch-1 graph, in the ir::save_graph
//                       format (its own magic/version/hardening included)
//     3 kPlans          one serialized ArenaPlan per batch variant
//     4 kPackedIndex    per-node (float_count, offset) into section 5
//     5 kPackedWeights  raw packed floats; section offset 4096-aligned in
//                       the file, each blob 64-aligned within the section
//
// Trust model: every length, offset, count, and enum is bounds-checked
// before anything dereferences or allocates from it, section checksums are
// verified before parsing, stored plans are re-validated against recomputed
// liveness, and stored blob sizes are compared against what this binary's
// packers would produce — a stored value is never trusted, only compared.
// Any violation throws a typed temco::Error (InvalidGraphError for malformed
// or incompatible bytes); hostile input never crashes the process
// (tests/test_artifact_hostile.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/compiled_model.hpp"
#include "support/mmap.hpp"

namespace temco::serve {

inline constexpr char kArtifactMagic[8] = {'T', 'M', 'C', 'O', 'A', 'R', 'T', '\0'};

/// Version of the artifact container format.
///
/// Bump rule (read this before editing the writer): any change to the header,
/// table layout, section set, or the encoding inside an existing section —
/// adding a field, reordering fields, changing a width — REQUIRES bumping
/// this constant.  There is no in-place migration: the loader accepts exactly
/// its own version and rejects everything else with an error naming both
/// versions, so old runtimes fail closed on new files and vice versa.
/// Changes to the *packed weight* encoding are versioned separately by
/// gemm::kPackLayoutVersion, which the meta section stamps.  A new section id
/// is also a format change — the loader deliberately rejects unknown ids
/// rather than skipping them, so "ignorable" additions still need a bump.
/// When bumping, regenerate tests/data/golden_artifact_v*.bin (tools/
/// temco_artifact golden) and keep the old golden checked in: the version-
/// skew test proves the new loader still *rejects* it with a typed error.
/// History: v1 — initial container; v2 — meta section gains the arena-budget
/// stamps (CompileOptions::max_arena_bytes, TemcoOptions::max_arena_bytes).
inline constexpr std::uint32_t kArtifactFormatVersion = 2;

/// Section identifiers; see the file-layout comment above.
enum class ArtifactSection : std::uint32_t {
  kMeta = 1,
  kGraph = 2,
  kPlans = 3,
  kPackedIndex = 4,
  kPackedWeights = 5,
};

/// Serializes `model` to artifact bytes (the pure, testable core of
/// CompiledModel::save).
std::string save_artifact_bytes(const CompiledModel& model);

/// Parses artifact bytes from an arbitrary in-memory buffer.  Packed weights
/// are copied out (the buffer makes no alignment or lifetime promises) — this
/// is the hostile-corpus entry point, where the bytes are the adversary.
std::shared_ptr<const CompiledModel> load_artifact_bytes(const void* data, std::size_t size);

/// Parses an artifact from a mapped file, keeping the mapping alive inside
/// the returned model and borrowing packed weights zero-copy when the
/// mapping's alignment allows (it always does: MappedFile guarantees
/// 4096-byte alignment, and the weight section is 4096-aligned in the file).
std::shared_ptr<const CompiledModel> load_artifact(
    std::shared_ptr<const support::MappedFile> file);

}  // namespace temco::serve
