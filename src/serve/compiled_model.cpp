#include "serve/compiled_model.hpp"

#include <algorithm>
#include <utility>

#include "kernels/gemm.hpp"
#include "support/align.hpp"
#include "support/log.hpp"

namespace temco::serve {

std::shared_ptr<const CompiledModel> CompiledModel::compile(const ir::Graph& graph,
                                                            CompileOptions options) {
  TEMCO_CHECK_AS(options.max_batch >= 1, InvalidGraphError)
      << "max_batch must be >= 1, got " << options.max_batch;

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->options_ = options;

  // Normalize to the batch-1 template, then run the pipeline once.  Every
  // rewrite decision (skip thresholds, fusion legality, transform choices)
  // is batch-independent, so optimizing at batch 1 and restamping is
  // equivalent to optimizing each variant — minus max_batch-1 pipeline runs.
  ir::Graph base = ir::rebatched(graph, 1);
  if (options.optimize) {
    base = core::optimize(base, options.temco, &model->stats_);
  }
  base.verify();

  runtime::ArenaOptions arena_options;
  arena_options.scratch_slots = 0;  // size for the global intra-op pool
  if (options.arena_canaries) arena_options.canary_bytes = kTensorAlignment;

  model->variants_.reserve(options.max_batch);
  model->plans_.reserve(options.max_batch);
  for (std::size_t k = 1; k <= options.max_batch; ++k) {
    ir::Graph variant = k == 1 ? base : ir::rebatched(base, static_cast<std::int64_t>(k));
    variant.verify();
    runtime::ArenaPlan plan = runtime::plan_arena(variant, arena_options);
    runtime::validate_arena_plan(variant, plan);
    model->slab_bytes_ = std::max(model->slab_bytes_, plan.arena_bytes);
    model->variants_.push_back(std::move(variant));
    model->plans_.push_back(std::move(plan));
  }

  // One packing serves all variants: it depends on weight contents and
  // output width only, and the variants share weight tensors by handle.
  model->prepack_ = runtime::PackedWeights::build(model->variants_.front());
  model->weight_bytes_ = model->variants_.front().total_weight_bytes();

  // Provenance stamp: which kernel tier compiled this artifact and which
  // packed-panel layout its blobs use (revalidate_kernel_dispatch).
  model->kernel_isa_ = kernels::gemm::active_isa();
  model->pack_layout_version_ = kernels::gemm::kPackLayoutVersion;

  const ir::Graph& b1 = model->variants_.front();
  for (const ir::Node& node : b1.nodes()) {
    if (node.kind == ir::OpKind::kInput) model->input_shapes_.push_back(node.out_shape);
  }
  for (const ir::ValueId out : b1.outputs()) {
    model->output_shapes_.push_back(b1.node(out).out_shape);
  }

  return model;
}

void CompiledModel::revalidate_kernel_dispatch() const {
  kernels::gemm::check_pack_layout(pack_layout_version_);
  const support::Isa active = kernels::gemm::active_isa();
  if (active != kernel_isa_) {
    TEMCO_WARN() << "kernel-isa-drift: artifact compiled under "
                 << support::isa_name(kernel_isa_) << ", dispatch now resolves to "
                 << support::isa_name(active)
                 << "; packed layout is ISA-independent, results are ULP-compatible";
  }
}

bool CompiledModel::compatible(const std::vector<Tensor>& inputs) const {
  if (inputs.size() != input_shapes_.size()) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].defined() || !(inputs[i].shape() == input_shapes_[i])) return false;
  }
  return true;
}

void CompiledModel::check_compatible(const std::vector<Tensor>& inputs) const {
  TEMCO_CHECK_AS(inputs.size() == input_shapes_.size(), InvalidGraphError)
      << "request carries " << inputs.size() << " input tensor(s), model expects "
      << input_shapes_.size();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    TEMCO_CHECK_AS(inputs[i].defined(), InvalidGraphError)
        << "request input " << i << " is undefined (no storage)";
    TEMCO_CHECK_AS(inputs[i].shape() == input_shapes_[i], ShapeError)
        << "request input " << i << " has shape " << inputs[i].shape()
        << ", model expects the batch-1 template " << input_shapes_[i];
  }
}

}  // namespace temco::serve
