#include "serve/compiled_model.hpp"

#include <algorithm>
#include <utility>

#include "kernels/gemm.hpp"
#include "runtime/budget.hpp"
#include "support/align.hpp"
#include "support/log.hpp"

namespace temco::serve {

std::shared_ptr<const CompiledModel> CompiledModel::compile(const ir::Graph& graph,
                                                            CompileOptions options) {
  TEMCO_CHECK_AS(options.max_batch >= 1, InvalidGraphError)
      << "max_batch must be >= 1, got " << options.max_batch;

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->options_ = options;

  // Normalize to the batch-1 template, then run the pipeline once.  Every
  // rewrite decision (skip thresholds, fusion legality, transform choices)
  // is batch-independent, so optimizing at batch 1 and restamping is
  // equivalent to optimizing each variant — minus max_batch-1 pipeline runs.
  ir::Graph base = ir::rebatched(graph, 1);
  if (options.optimize) {
    // The pipeline's own budget pass would search the batch-1 graph; compile
    // searches the max_batch variant below (the one that sizes the slab), so
    // it is suppressed here and the stamped options_ keep the user's intent.
    core::TemcoOptions temco = options.temco;
    temco.max_arena_bytes = 0;
    base = core::optimize(base, temco, &model->stats_);
  }
  base.verify();

  runtime::ArenaOptions arena_options;
  arena_options.scratch_slots = 0;  // size for the global intra-op pool
  if (options.arena_canaries) arena_options.canary_bytes = kTensorAlignment;

  const std::int64_t budget =
      options.max_arena_bytes > 0 ? options.max_arena_bytes : options.temco.max_arena_bytes;
  if (budget > 0) {
    // Search the widest variant: its plan is the slab every session allocates.
    // The budget-meeting order (remat duplicates included) de-batches back to
    // the batch-1 template, so every restamped variant inherits the schedule.
    ir::Graph widest = options.max_batch == 1
                           ? base
                           : ir::rebatched(base, static_cast<std::int64_t>(options.max_batch));
    runtime::BudgetOptions budget_options;
    budget_options.max_bytes = budget;
    budget_options.arena = arena_options;
    runtime::BudgetScheduleResult scheduled = runtime::schedule_for_budget(widest, budget_options);
    TEMCO_CHECK_AS(scheduled.met, ResourceExhaustedError)
        << "arena budget of " << budget << " B is unmeetable at batch " << options.max_batch
        << ": best achievable slab is " << scheduled.achieved_arena_bytes << " B ("
        << scheduled.remat_nodes << " rematerialized node(s), predicted slowdown "
        << scheduled.predicted_slowdown << "x)";
    base = options.max_batch == 1 ? std::move(scheduled.graph)
                                  : ir::rebatched(scheduled.graph, 1);
    base.verify();
  }

  model->variants_.reserve(options.max_batch);
  model->plans_.reserve(options.max_batch);
  for (std::size_t k = 1; k <= options.max_batch; ++k) {
    ir::Graph variant = k == 1 ? base : ir::rebatched(base, static_cast<std::int64_t>(k));
    variant.verify();
    runtime::ArenaPlan plan = runtime::plan_arena(variant, arena_options);
    runtime::validate_arena_plan(variant, plan);
    model->slab_bytes_ = std::max(model->slab_bytes_, plan.arena_bytes);
    model->variants_.push_back(std::move(variant));
    model->plans_.push_back(std::move(plan));
  }

  // Defensive: the searched schedule met the budget at max_batch, and batch
  // restamping preserves the order, so no variant should pack wider — but the
  // slab is the contract sessions size by, so it is re-checked, not assumed.
  TEMCO_CHECK_AS(budget <= 0 || model->slab_bytes_ <= budget, ResourceExhaustedError)
      << "validated slab of " << model->slab_bytes_ << " B exceeds the arena budget of "
      << budget << " B after batch restamping";

  // One packing serves all variants: it depends on weight contents and
  // output width only, and the variants share weight tensors by handle.
  model->prepack_ = runtime::PackedWeights::build(model->variants_.front());
  model->weight_bytes_ = model->variants_.front().total_weight_bytes();

  // Provenance stamp: which kernel tier compiled this artifact and which
  // packed-panel layout its blobs use (revalidate_kernel_dispatch).
  model->kernel_isa_ = kernels::gemm::active_isa();
  model->pack_layout_version_ = kernels::gemm::kPackLayoutVersion;

  const ir::Graph& b1 = model->variants_.front();
  for (const ir::Node& node : b1.nodes()) {
    if (node.kind == ir::OpKind::kInput) model->input_shapes_.push_back(node.out_shape);
  }
  for (const ir::ValueId out : b1.outputs()) {
    model->output_shapes_.push_back(b1.node(out).out_shape);
  }

  return model;
}

void CompiledModel::revalidate_kernel_dispatch() const {
  kernels::gemm::check_pack_layout(pack_layout_version_);
  const support::Isa active = kernels::gemm::active_isa();
  if (active != kernel_isa_) {
    TEMCO_WARN() << "kernel-isa-drift: artifact compiled under "
                 << support::isa_name(kernel_isa_) << ", dispatch now resolves to "
                 << support::isa_name(active)
                 << "; packed layout is ISA-independent, results are ULP-compatible";
  }
}

bool CompiledModel::compatible(const std::vector<Tensor>& inputs) const {
  if (inputs.size() != input_shapes_.size()) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].defined() || !(inputs[i].shape() == input_shapes_[i])) return false;
  }
  return true;
}

void CompiledModel::check_compatible(const std::vector<Tensor>& inputs) const {
  TEMCO_CHECK_AS(inputs.size() == input_shapes_.size(), InvalidGraphError)
      << "request carries " << inputs.size() << " input tensor(s), model expects "
      << input_shapes_.size();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    TEMCO_CHECK_AS(inputs[i].defined(), InvalidGraphError)
        << "request input " << i << " is undefined (no storage)";
    TEMCO_CHECK_AS(inputs[i].shape() == input_shapes_[i], ShapeError)
        << "request input " << i << " has shape " << inputs[i].shape()
        << ", model expects the batch-1 template " << input_shapes_[i];
  }
}

}  // namespace temco::serve
