// Request server: bounded admission queue, worker threads, and a dynamic
// micro-batcher over the session pool.
//
// Life of a request: submit() validates it against the model's compatibility
// predicate and enqueues it (throwing typed errors instead of blocking when
// the server is stopping or the queue is full — the backpressure contract),
// returning a future.  A worker takes the oldest request, then coalesces
// further compatible requests into a micro-batch — up to max_batch of them,
// waiting at most batch_timeout for stragglers, never waiting when the
// queue already holds a full batch — checks out a session, executes the
// batch-k variant once, and fulfills each request's future with its own
// slice of the batched outputs.  Batched outputs are bit-identical to
// running each request alone, so batching is invisible to clients except as
// throughput.
//
// Fault tolerance (see DESIGN.md "Fault tolerance" for the full matrix):
//  - Deadlines: SubmitOptions carries an absolute deadline, enforced at
//    admission (DeadlineExceededError from submit), again before execution,
//    and cooperatively inside the Executor via the session's cancel token —
//    a request never burns a session after its SLO already lapsed.
//  - Retry: a batch that fails with a *transient* fault (TransientFaultError,
//    ResourceExhaustedError) is re-executed up to max_retries times with
//    exponential, jittered backoff.  Transient faults never publish partial
//    results (the arena is rewritten from scratch), so retry is safe.
//  - Quarantine: *corrupting* faults (NumericError, MemoryCorruptionError)
//    are terminal for the batch AND for the session — the pool scrubs,
//    audits, and replaces it rather than re-leasing suspect memory.
//  - Circuit breaker: breaker_threshold consecutive batch failures degrade
//    the batcher to singleton batches on a hardened serial executor
//    (isolation over throughput); breaker_recovery consecutive successes in
//    that mode restore normal batching.
//  - Watchdog: with a nonzero hang_budget, a dedicated thread flags batches
//    that outlive it, fails their futures fast (DeadlineExceededError), and
//    cancels the stuck run via the session token so the worker comes back.
//
// Every accepted request resolves exactly once, to a value or a typed
// temco::Error — enforced structurally by an atomic per-request claim, so
// shutdown racing the watchdog racing a worker can never double-resolve.
//
// Shutdown: shutdown(drain=true) stops admission and completes everything
// already accepted; shutdown(drain=false) — what the destructor does —
// additionally fails still-queued requests with CancelledError.  Requests a
// worker has already claimed always run to completion, so a fulfilled
// future is never abandoned and a queued one always resolves to a value or
// a typed error; nothing is silently dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/session.hpp"
#include "support/cancel.hpp"

namespace temco::serve {

struct ServerOptions {
  /// Worker threads pulling micro-batches off the queue.
  std::size_t workers = 2;

  /// Sessions in the pool; 0 means one per worker (the useful minimum —
  /// fewer would make workers queue on checkout, more is wasted slab).
  std::size_t sessions = 0;

  /// Admission queue bound; a submit beyond it throws
  /// ResourceExhaustedError (backpressure, never silent dropping).
  std::size_t queue_capacity = 256;

  /// Micro-batch ceiling; 0 means the model's compiled max_batch.  Must not
  /// exceed it.  1 disables batching (the pool-only serving mode).
  std::size_t max_batch = 0;

  /// How long a worker holding a partial batch waits for stragglers before
  /// executing.  0 executes whatever one queue drain yields.
  std::chrono::microseconds batch_timeout{200};

  /// Extra attempts granted to a batch whose failure classified transient
  /// (TransientFaultError, ResourceExhaustedError).  0 disables retry.
  std::size_t max_retries = 2;

  /// Base backoff before retry attempt a: base * 2^(a-1), scaled by a
  /// uniform jitter in [0.5, 1.5) so synchronized failures don't retry in
  /// lockstep.  0 retries immediately (what deterministic tests use).
  std::chrono::microseconds retry_backoff{200};

  /// Consecutive batch failures that trip the circuit breaker into degraded
  /// mode (singleton batches, hardened serial executor).  0 disables.
  std::size_t breaker_threshold = 3;

  /// Consecutive degraded-mode successes before normal batching restores.
  std::size_t breaker_recovery = 8;

  /// Wall-clock budget an executing batch may spend before the watchdog
  /// fails its futures fast and cancels the run.  0 (default) disables the
  /// watchdog thread entirely.
  std::chrono::milliseconds hang_budget{0};

  /// Watchdog polling period (only meaningful with a nonzero hang_budget).
  std::chrono::milliseconds watchdog_interval{10};
};

/// Per-request submit-time options.
struct SubmitOptions {
  /// Absolute completion deadline; time_point::max() (default) means none.
  /// An already-expired deadline is rejected at admission.
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();

  /// Convenience: nonzero sets `deadline = now + timeout` at submit time
  /// (the earlier of the two wins if both are given).
  std::chrono::microseconds timeout{0};
};

/// Monotonic counters, readable at any time; a snapshot, not a transaction.
/// Every accepted request lands in exactly one of completed / failed /
/// cancelled / deadline_expired / hung_requests once it resolves.
struct ServerStats {
  std::uint64_t accepted = 0;           ///< requests admitted to the queue
  std::uint64_t rejected = 0;           ///< submits refused (queue full)
  std::uint64_t completed = 0;          ///< futures fulfilled with outputs
  std::uint64_t failed = 0;             ///< futures failed with an execution error
  std::uint64_t cancelled = 0;          ///< futures failed with CancelledError at shutdown
  std::uint64_t deadline_rejected = 0;  ///< submits refused (deadline already expired)
  std::uint64_t deadline_expired = 0;   ///< accepted requests that ran out of deadline
  std::uint64_t hung_requests = 0;      ///< futures failed fast by the watchdog
  std::uint64_t hung_batches = 0;       ///< batches flagged over the hang budget
  std::uint64_t retries = 0;            ///< batch re-executions after transient faults
  std::uint64_t quarantined = 0;        ///< sessions retired after corrupting faults
  std::uint64_t breaker_trips = 0;      ///< normal → degraded transitions
  std::uint64_t breaker_restores = 0;   ///< degraded → normal transitions
  std::uint64_t degraded_batches = 0;   ///< batches executed in degraded mode
  std::uint64_t batches = 0;            ///< micro-batches executed
  std::uint64_t batched_requests = 0;   ///< requests summed over those batches
  std::uint64_t max_batch_seen = 0;     ///< largest coalesced batch so far
  std::uint64_t in_flight = 0;          ///< claimed by a worker, not yet resolved
  std::uint64_t queue_depth = 0;        ///< requests queued at snapshot time (gauge)
  std::int64_t resident_arena_bytes = 0;  ///< session-pool slab residency (gauge)
  bool degraded = false;                ///< breaker currently in degraded mode
};

class Server {
 public:
  Server(std::shared_ptr<const CompiledModel> model, ServerOptions options = {});

  /// Equivalent to shutdown(false): accepted-but-queued requests are failed
  /// with CancelledError, claimed ones complete.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request and returns the future its outputs (or error)
  /// will arrive on.  Throws ShapeError/InvalidGraphError when the inputs
  /// don't satisfy the model's compatibility predicate, CancelledError
  /// after shutdown began, ResourceExhaustedError when the queue is at
  /// capacity — the caller's signal to back off — and DeadlineExceededError
  /// when the submit options carry an already-expired deadline.
  std::future<std::vector<Tensor>> submit(std::vector<Tensor> inputs);
  std::future<std::vector<Tensor>> submit(std::vector<Tensor> inputs, SubmitOptions options);

  /// Stops admission and joins the workers.  drain=true completes every
  /// queued request first; drain=false fails queued requests with
  /// CancelledError.  Idempotent; later calls are no-ops.
  void shutdown(bool drain);

  ServerStats stats() const;
  const CompiledModel& model() const { return *model_; }
  std::shared_ptr<const CompiledModel> shared_model() const { return model_; }

  /// The underlying pool — exposed so tests can stall workers by holding
  /// leases and benchmarks can report resident bytes.
  SessionPool& session_pool() { return *pool_; }

 private:
  struct Request {
    std::vector<Tensor> inputs;
    std::promise<std::vector<Tensor>> promise;
    std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
    /// Exactly-once resolution claim: whoever flips it owns the promise.
    /// Workers, the watchdog, and shutdown all race through here safely.
    std::atomic<bool> resolved{false};

    bool claim() {
      bool expected = false;
      return resolved.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
    }
    bool expired(std::chrono::steady_clock::time_point now) const {
      return deadline != std::chrono::steady_clock::time_point::max() && now >= deadline;
    }
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// One batch currently executing, registered with the watchdog.
  struct Inflight {
    std::chrono::steady_clock::time_point started;
    support::CancelToken* token = nullptr;
    std::vector<RequestPtr> requests;
    bool flagged = false;
  };
  using WatchHandle = std::optional<std::list<Inflight>::iterator>;

  void worker_loop();
  void execute_batch(std::vector<RequestPtr>& batch, bool degraded);
  void watchdog_loop();

  bool resolve_value(Request& request, std::vector<Tensor> value);
  bool resolve_error(Request& request, const std::exception_ptr& error,
                     std::atomic<std::uint64_t>& counter);
  void fail_batch(std::vector<RequestPtr>& batch, const std::exception_ptr& error);
  void sweep_expired(std::vector<RequestPtr>& batch);
  void backoff_sleep(std::size_t attempt);
  void breaker_failure();
  void breaker_success();
  WatchHandle watch_begin(const std::vector<RequestPtr>& batch, support::CancelToken* token);
  bool watch_end(WatchHandle& handle);

  std::shared_ptr<const CompiledModel> model_;
  ServerOptions options_;
  std::unique_ptr<SessionPool> pool_;

  mutable std::mutex queue_mutex_;  ///< mutable: stats() samples queue depth
  std::condition_variable queue_cv_;
  std::deque<RequestPtr> queue_;
  bool stopping_ = false;
  bool joined_ = false;
  std::mutex shutdown_mutex_;  ///< serializes concurrent shutdown() calls

  /// Workers run as long-lived tasks on a dedicated pool (their kernels
  /// then execute inline within the task, by the nested-run rule); the
  /// dispatcher thread is the pool's participating caller.
  std::unique_ptr<ThreadPool> worker_pool_;
  std::thread dispatcher_;

  // ---- circuit breaker ------------------------------------------------------
  std::mutex breaker_mutex_;
  std::size_t consecutive_failures_ = 0;  ///< guarded by breaker_mutex_
  std::size_t probe_successes_ = 0;       ///< guarded by breaker_mutex_
  std::atomic<bool> degraded_{false};

  // ---- retry jitter ---------------------------------------------------------
  std::mutex rng_mutex_;
  std::mt19937_64 rng_{0x7e4c0de5e271ull};  ///< guarded by rng_mutex_

  // ---- watchdog (active only with a nonzero hang_budget) --------------------
  std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  std::list<Inflight> watched_;  ///< guarded by watch_mutex_
  bool watchdog_stop_ = false;   ///< guarded by watch_mutex_
  std::thread watchdog_;

  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, rejected{0}, completed{0}, failed{0}, cancelled{0},
        deadline_rejected{0}, deadline_expired{0}, hung_requests{0}, hung_batches{0}, retries{0},
        quarantined{0}, breaker_trips{0}, breaker_restores{0}, degraded_batches{0}, batches{0},
        batched_requests{0}, max_batch_seen{0}, in_flight{0};
  };
  Counters counters_;
};

/// Named models behind one front door, with atomic hot swap.
///
/// Each name maps to a live Server.  install() (and swap(), which insists the
/// name already exists) builds the replacement server *outside* the registry
/// lock — compilation or artifact loading never blocks routing — then swaps
/// the map entry atomically and drains the old server: in-flight and queued
/// requests complete on the model that accepted them, new submissions land on
/// the new model, and nothing is dropped in between.  submit() closes the
/// unavoidable race (lookup → swap → submit would see the old server refuse
/// admission): a CancelledError from a server that is no longer the mapped
/// one is retried against its replacement, so clients of a hot-swapped name
/// never observe the swap except through which model answered.
///
/// Thread-safe: any number of submitters, swappers, and readers.
class ArtifactRegistry {
 public:
  /// `defaults` applies to installs that don't carry their own options.
  explicit ArtifactRegistry(ServerOptions defaults = {});

  /// Drains every installed server (equivalent to remove() on each name).
  ~ArtifactRegistry();

  ArtifactRegistry(const ArtifactRegistry&) = delete;
  ArtifactRegistry& operator=(const ArtifactRegistry&) = delete;

  /// Installs `model` under `name`, replacing (and draining) any previous
  /// holder.  Returns the now-serving server.
  std::shared_ptr<Server> install(const std::string& name,
                                  std::shared_ptr<const CompiledModel> model);
  std::shared_ptr<Server> install(const std::string& name,
                                  std::shared_ptr<const CompiledModel> model,
                                  ServerOptions options);

  /// Loads an artifact file (CompiledModel::load: validated, zero-copy
  /// weights) and installs it under `name`.
  std::shared_ptr<Server> install_file(const std::string& name, const std::string& path);

  /// Hot swap: like install, but throws InvalidGraphError when `name` is not
  /// currently serving — a swap is a replacement, not a first deploy.  The
  /// new server reuses the old one's options.
  std::shared_ptr<Server> swap(const std::string& name,
                               std::shared_ptr<const CompiledModel> model);
  std::shared_ptr<Server> swap_file(const std::string& name, const std::string& path);

  /// Routes one request to whatever server currently holds `name`, retrying
  /// transparently across a concurrent swap (see class comment).  Throws
  /// InvalidGraphError for an unknown name; admission errors (queue full,
  /// deadline, shape) pass through unchanged.
  std::future<std::vector<Tensor>> submit(const std::string& name, std::vector<Tensor> inputs,
                                          SubmitOptions options = {});

  /// The server currently holding `name`; throws InvalidGraphError if none.
  std::shared_ptr<Server> server(const std::string& name) const;

  /// Installed names, unordered.
  std::vector<std::string> names() const;

  /// Stops serving `name`: drains its server and forgets it.  No-op for an
  /// unknown name.
  void remove(const std::string& name);

 private:
  struct Entry {
    std::shared_ptr<Server> server;
    ServerOptions options;
  };

  std::shared_ptr<Server> replace(const std::string& name,
                                  std::shared_ptr<const CompiledModel> model,
                                  std::optional<ServerOptions> options, bool must_exist);

  ServerOptions defaults_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< guarded by mutex_
};

}  // namespace temco::serve
