// Request server: bounded admission queue, worker threads, and a dynamic
// micro-batcher over the session pool.
//
// Life of a request: submit() validates it against the model's compatibility
// predicate and enqueues it (throwing typed errors instead of blocking when
// the server is stopping or the queue is full — the backpressure contract),
// returning a future.  A worker takes the oldest request, then coalesces
// further compatible requests into a micro-batch — up to max_batch of them,
// waiting at most batch_timeout for stragglers, never waiting when the
// queue already holds a full batch — checks out a session, executes the
// batch-k variant once, and fulfills each request's future with its own
// slice of the batched outputs.  Batched outputs are bit-identical to
// running each request alone, so batching is invisible to clients except as
// throughput.
//
// Failure isolation: an execution fault (kernel check, NumericError from
// check_numerics, injected failpoint) fails exactly the requests of the
// batch that hit it; other batches — including ones coalesced a moment
// later from the same queue — are unaffected, and the worker, session, and
// server all remain serviceable.
//
// Shutdown: shutdown(drain=true) stops admission and completes everything
// already accepted; shutdown(drain=false) — what the destructor does —
// additionally fails still-queued requests with CancelledError.  Requests a
// worker has already claimed always run to completion, so a fulfilled
// future is never abandoned and a queued one always resolves to a value or
// a typed error; nothing is silently dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "serve/session.hpp"

namespace temco::serve {

struct ServerOptions {
  /// Worker threads pulling micro-batches off the queue.
  std::size_t workers = 2;

  /// Sessions in the pool; 0 means one per worker (the useful minimum —
  /// fewer would make workers queue on checkout, more is wasted slab).
  std::size_t sessions = 0;

  /// Admission queue bound; a submit beyond it throws
  /// ResourceExhaustedError (backpressure, never silent dropping).
  std::size_t queue_capacity = 256;

  /// Micro-batch ceiling; 0 means the model's compiled max_batch.  Must not
  /// exceed it.  1 disables batching (the pool-only serving mode).
  std::size_t max_batch = 0;

  /// How long a worker holding a partial batch waits for stragglers before
  /// executing.  0 executes whatever one queue drain yields.
  std::chrono::microseconds batch_timeout{200};
};

/// Monotonic counters, readable at any time; a snapshot, not a transaction.
struct ServerStats {
  std::uint64_t accepted = 0;          ///< requests admitted to the queue
  std::uint64_t rejected = 0;          ///< submits refused (queue full)
  std::uint64_t completed = 0;         ///< futures fulfilled with outputs
  std::uint64_t failed = 0;            ///< futures fulfilled with an execution error
  std::uint64_t cancelled = 0;         ///< futures failed with CancelledError at shutdown
  std::uint64_t batches = 0;           ///< micro-batches executed
  std::uint64_t batched_requests = 0;  ///< requests summed over those batches
  std::uint64_t max_batch_seen = 0;    ///< largest coalesced batch so far
  std::uint64_t in_flight = 0;         ///< claimed by a worker, not yet resolved
};

class Server {
 public:
  Server(std::shared_ptr<const CompiledModel> model, ServerOptions options = {});

  /// Equivalent to shutdown(false): accepted-but-queued requests are failed
  /// with CancelledError, claimed ones complete.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one request and returns the future its outputs (or error)
  /// will arrive on.  Throws ShapeError/InvalidGraphError when the inputs
  /// don't satisfy the model's compatibility predicate, CancelledError
  /// after shutdown began, and ResourceExhaustedError when the queue is at
  /// capacity — the caller's signal to back off.
  std::future<std::vector<Tensor>> submit(std::vector<Tensor> inputs);

  /// Stops admission and joins the workers.  drain=true completes every
  /// queued request first; drain=false fails queued requests with
  /// CancelledError.  Idempotent; later calls are no-ops.
  void shutdown(bool drain);

  ServerStats stats() const;
  const CompiledModel& model() const { return *model_; }

  /// The underlying pool — exposed so tests can stall workers by holding
  /// leases and benchmarks can report resident bytes.
  SessionPool& session_pool() { return *pool_; }

 private:
  struct Request {
    std::vector<Tensor> inputs;
    std::promise<std::vector<Tensor>> promise;
  };

  void worker_loop();
  void execute_batch(std::vector<Request>& batch);

  std::shared_ptr<const CompiledModel> model_;
  ServerOptions options_;
  std::unique_ptr<SessionPool> pool_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool joined_ = false;
  std::mutex shutdown_mutex_;  ///< serializes concurrent shutdown() calls

  /// Workers run as long-lived tasks on a dedicated pool (their kernels
  /// then execute inline within the task, by the nested-run rule); the
  /// dispatcher thread is the pool's participating caller.
  std::unique_ptr<ThreadPool> worker_pool_;
  std::thread dispatcher_;

  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, rejected{0}, completed{0}, failed{0}, cancelled{0},
        batches{0}, batched_requests{0}, max_batch_seen{0}, in_flight{0};
  };
  Counters counters_;
};

}  // namespace temco::serve
