// Compile-once serving artifact.
//
// A CompiledModel runs the whole TeMCO pipeline exactly once — decompose
// upstream, then optimize (skip-opt, transforms, fusion, DCE), stamp one
// execution variant per batch size, plan a static arena for each, and pack
// GEMM weights — and freezes the result as an immutable artifact.  Serving
// sessions (session.hpp) and the request server (server.hpp) share one
// artifact read-only across any number of threads: nothing in it is ever
// mutated after compile() returns, which is the whole thread-safety story.
//
// Batch variants: the model is compiled from a batch-1 template; variant k
// (1 <= k <= max_batch) is the same optimized graph with every input's batch
// dimension restamped to k (ir::rebatched).  Weights are shared handles, so
// a variant costs activation metadata plus an arena plan — and GEMM weight
// packing depends only on weights and output width, never the batch, so one
// PackedWeights serves every variant.  All variants' plans index into a slab
// of `slab_bytes()` (the max across variants), which is what lets one
// session own a single allocation and serve any batch size with it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/temco.hpp"
#include "ir/graph.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "support/cpu.hpp"

namespace temco::serve {

struct CompileOptions {
  /// Pipeline knobs forwarded to core::optimize.
  core::TemcoOptions temco;

  /// Run the TeMCO optimization pipeline.  Off compiles the graph as-is
  /// (still planned, packed, and batch-stamped) — the "no compiler" baseline
  /// the serving benchmark compares against.
  bool optimize = true;

  /// Largest batch any session of this model can execute — the ceiling the
  /// server's micro-batcher coalesces up to.  One variant is stamped per
  /// batch size in [1, max_batch].
  std::size_t max_batch = 8;

  /// Guardrails baked into every session executor (see ExecutorOptions).
  bool check_numerics = false;
  bool arena_canaries = false;

  /// Intra-op width baked into every session executor
  /// (ExecutorOptions::intra_op_threads): 0 = kernels use the process-global
  /// pool, N ≥ 1 = each session executor owns a dedicated N-thread kernel
  /// pool.  Results are bit-identical for any width.
  std::size_t intra_op_threads = 0;

  /// Hard cap on slab_bytes() — the per-session arena a tenant pays for.
  /// When > 0, compile() runs runtime::schedule_for_budget on the max_batch
  /// variant (the one that sizes the slab) and bakes the budget-meeting
  /// schedule into every variant; an unmeetable budget raises
  /// ResourceExhaustedError naming the best achievable slab.  Takes
  /// precedence over temco.max_arena_bytes (compile's own search already
  /// covers the pipeline's pass).  Artifacts stamp the value; outputs stay
  /// bitwise-identical to the unconstrained schedule.  0 = unconstrained.
  std::int64_t max_arena_bytes = 0;
};

class CompiledModel {
 public:
  /// Compiles `graph` (a batch-agnostic template; any input batch dimension
  /// is normalized to 1 first) into an immutable artifact.  Returned as
  /// shared_ptr-to-const because sessions and servers co-own it and the
  /// const is load-bearing: the artifact is shared across threads unlocked.
  static std::shared_ptr<const CompiledModel> compile(const ir::Graph& graph,
                                                      CompileOptions options = {});

  // ---- on-disk artifacts (serve/artifact.hpp) ------------------------------

  /// Freezes this model to a versioned artifact file: every batch variant's
  /// schedule, every validated arena plan, the shared packed-weight blob, and
  /// the compatibility stamps, section-tabled and checksummed.  Throws
  /// temco::Error on I/O failure.
  void save(const std::string& path) const;

  /// Loads an artifact written by save().  The packed-weight section is
  /// mapped zero-copy when the platform allows (the returned model co-owns
  /// the mapping); every length, offset, count, and enum in the file is
  /// bounds-checked and every stamp re-validated before anything is trusted —
  /// malformed or incompatible input throws a typed temco::Error, never
  /// crashes.  The result is interchangeable with compile()'s.
  static std::shared_ptr<const CompiledModel> load(const std::string& path);

  std::size_t max_batch() const { return options_.max_batch; }
  const CompileOptions& options() const { return options_; }
  const core::OptimizeStats& stats() const { return stats_; }

  /// The optimized graph stamped for `batch` in [1, max_batch].
  const ir::Graph& graph(std::size_t batch) const { return variants_[index(batch)]; }

  /// The pre-validated arena plan for `batch`'s variant.
  const runtime::ArenaPlan& plan(std::size_t batch) const { return plans_[index(batch)]; }

  /// Shared GEMM weight packing, valid for every batch variant.
  const runtime::PackedWeights& prepack() const { return prepack_; }

  /// Slab size that satisfies every variant's plan (max over batch sizes).
  std::int64_t slab_bytes() const { return slab_bytes_; }
  std::int64_t packed_weight_bytes() const { return prepack_.bytes; }
  std::int64_t weight_bytes() const { return weight_bytes_; }

  // ---- kernel-dispatch provenance stamp ------------------------------------

  /// The GEMM ISA tier active when this artifact was compiled, and the packed
  /// panel layout version its PackedWeights were built with.  The layout is
  /// deliberately ISA-independent (gemm::kPackLayoutVersion), so an artifact
  /// stays valid when dispatch later resolves to a different tier — the stamp
  /// records provenance, and revalidation distinguishes the benign case (ISA
  /// drift: logged, results ULP-compatible per the bit-compatibility policy)
  /// from the fatal one (layout version mismatch: the blobs would be
  /// misread).
  support::Isa kernel_isa() const { return kernel_isa_; }
  const char* kernel_isa_name() const { return support::isa_name(kernel_isa_); }
  std::uint32_t pack_layout_version() const { return pack_layout_version_; }

  /// Re-checks the stamp against the running process: throws
  /// InvalidGraphError on a pack-layout version mismatch; logs a typed
  /// warning when the active ISA tier differs from the compile-time one.
  /// Sessions call this when they bind the artifact.
  void revalidate_kernel_dispatch() const;

  // ---- request signature (batch-1 template shapes) -------------------------

  std::size_t num_inputs() const { return input_shapes_.size(); }
  const Shape& input_shape(std::size_t i) const { return input_shapes_[i]; }
  std::size_t num_outputs() const { return output_shapes_.size(); }
  const Shape& output_shape(std::size_t o) const { return output_shapes_[o]; }

  /// The micro-batcher's compatibility predicate: a request is batchable iff
  /// it carries exactly one defined tensor per model input with the batch-1
  /// template shape.  Requests satisfying this are coalescible with each
  /// other by construction — there is nothing else to compare.
  bool compatible(const std::vector<Tensor>& inputs) const;

  /// Throws InvalidGraphError/ShapeError naming the first violation.
  void check_compatible(const std::vector<Tensor>& inputs) const;

 private:
  friend class ArtifactCodec;  ///< serve/artifact.cpp: the save/load implementation

  CompiledModel() = default;

  std::size_t index(std::size_t batch) const {
    TEMCO_CHECK(batch >= 1 && batch <= variants_.size())
        << "batch " << batch << " outside compiled range [1, " << variants_.size() << "]";
    return batch - 1;
  }

  CompileOptions options_;
  core::OptimizeStats stats_;
  std::vector<ir::Graph> variants_;        ///< [k-1] holds the batch-k graph
  std::vector<runtime::ArenaPlan> plans_;  ///< parallel to variants_
  runtime::PackedWeights prepack_;
  std::int64_t slab_bytes_ = 0;
  std::int64_t weight_bytes_ = 0;
  support::Isa kernel_isa_ = support::Isa::kScalar;
  std::uint32_t pack_layout_version_ = 0;
  std::vector<Shape> input_shapes_;   ///< batch-1 input templates, in input order
  std::vector<Shape> output_shapes_;  ///< batch-1 output templates, in output order

  /// Keep-alive for zero-copy loads: when prepack_.views borrows from an
  /// mmapped artifact, this co-owns the mapping.  Null for compiled models
  /// and copy-mode loads.
  std::shared_ptr<const void> artifact_owner_;
};

}  // namespace temco::serve
